// Sharded observability determinism: the event stream a downstream sink
// observes, the assembled trace, and the fanned-in metric snapshot must all
// be bit-identical across shard counts, lookaheads and drain modes — a
// sharded run is indistinguishable from the 1-shard reference to every
// consumer.  Plus unit coverage for ShardedEventSink itself: the lane
// insertion invariant, the cursor merge and its many-lane fallback, the
// stream digest, and the overlap-drain handoff.
#include "obs/sharded_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/shaper.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/server.h"
#include "stream/gen_stream.h"
#include "stream/sharded.h"
#include "stream/stream.h"
#include "trace/presets.h"

namespace qos {
namespace {

using stream::RequestStream;
using stream::ShardedOptions;
using stream::ShardedStats;
using stream::TenantSim;

constexpr Time kRun = 30 * kUsPerSec;

// One tenant per policy: the sharded observability path must hold for every
// scheduler, including the event-richest (Miser emits slack dispatches,
// Split drives two servers).
struct TenantSpec {
  Workload workload;
  Policy policy;
  double cmin;
};

const TenantSpec kTenants[] = {
    {Workload::kWebSearch, Policy::kMiser, 700},
    {Workload::kFinTrans, Policy::kSplit, 400},
    {Workload::kOpenMail, Policy::kFairQueue, 1'200},
    {Workload::kWebSearch, Policy::kFcfs, 900},
};

TenantSim build_tenant(std::uint32_t client) {
  const TenantSpec& spec = kTenants[client];
  ShapingConfig config;
  config.policy = spec.policy;
  TenantSim sim;
  sim.scheduler = make_scheduler(config, spec.cmin);
  const double headroom = config.resolved_headroom_iops();
  if (sim.scheduler->server_count() == 2) {
    sim.servers.push_back(std::make_unique<ConstantRateServer>(spec.cmin));
    sim.servers.push_back(std::make_unique<ConstantRateServer>(headroom));
  } else {
    sim.servers.push_back(
        std::make_unique<ConstantRateServer>(spec.cmin + headroom));
  }
  return sim;
}

std::unique_ptr<RequestStream> tenant_stream() {
  std::vector<std::unique_ptr<RequestStream>> sources;
  for (const TenantSpec& t : kTenants)
    sources.push_back(stream::make_preset_stream(t.workload, kRun));
  return std::make_unique<stream::MergedStream>(std::move(sources));
}

struct ObservedRun {
  RecordingSink events;
  MetricRegistry registry;
  ShardedStats stats;
};

// Returned through a unique_ptr so the sink/registry addresses handed to
// ShardedOptions stay stable no matter how the result travels.
std::unique_ptr<ObservedRun> run_observed(int shards, Time lookahead = 10'000,
                                          bool overlap = true) {
  auto run = std::make_unique<ObservedRun>();
  auto s = tenant_stream();
  ShardedOptions options;
  options.shards = shards;
  options.lookahead = lookahead;
  options.overlap_drain = overlap;
  options.sink = &run->events;
  options.registry = &run->registry;
  run->stats = simulate_sharded(*s, build_tenant, options,
                                [](const CompletionRecord&) {});
  return run;
}

void expect_same_events(const std::vector<Event>& got,
                        const std::vector<Event>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "event " << i;
}

// Exact snapshot equality: integer metrics match exactly, and the
// double-valued aggregates (gauge values, histogram means, occupancy
// integrals) must be *bit*-identical — the fixed fan-in fold order
// guarantees it, and EXPECT_EQ on doubles asserts it.
void expect_same_snapshot(const MetricRegistry& got,
                          const MetricRegistry& want) {
  ASSERT_EQ(got.counters().size(), want.counters().size());
  for (const auto& [name, counter] : want.counters()) {
    const Counter* g = got.find_counter(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->value(), counter.value()) << name;
  }
  ASSERT_EQ(got.gauges().size(), want.gauges().size());
  for (const auto& [name, gauge] : want.gauges()) {
    const Gauge* g = got.find_gauge(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->value(), gauge.value()) << name;
  }
  ASSERT_EQ(got.histograms().size(), want.histograms().size());
  for (const auto& [name, hist] : want.histograms()) {
    const LatencyHistogram* g = got.find_histogram(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->count(), hist.count()) << name;
    EXPECT_EQ(g->min(), hist.min()) << name;
    EXPECT_EQ(g->max(), hist.max()) << name;
    EXPECT_EQ(g->mean_us(), hist.mean_us()) << name;
    for (double p : {0.5, 0.9, 0.99, 1.0})
      EXPECT_EQ(g->quantile(p), hist.quantile(p)) << name << " p" << p;
  }
  ASSERT_EQ(got.occupancies().size(), want.occupancies().size());
  for (const auto& [name, occ] : want.occupancies()) {
    const OccupancySeries* g = got.find_occupancy(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->mean(), occ.mean()) << name;
    EXPECT_EQ(g->max(), occ.max()) << name;
    EXPECT_EQ(g->current(), occ.current()) << name;
    EXPECT_EQ(g->duration(), occ.duration()) << name;
  }
}

// ---------------------------------------------------------------------------
// End-to-end identity: sharded runs are observationally equal to 1 shard.

TEST(ShardObs, EventStreamIdenticalAcrossShardCounts) {
  auto ref = run_observed(1);
  ASSERT_GT(ref->events.events().size(), 0u);
  EXPECT_EQ(ref->stats.events_forwarded, ref->events.events().size());
  for (int shards : {2, 8}) {
    SCOPED_TRACE(shards);
    auto got = run_observed(shards);
    expect_same_events(got->events.events(), ref->events.events());
    EXPECT_EQ(got->stats.event_digest, ref->stats.event_digest);
    EXPECT_EQ(got->stats.events_forwarded, ref->stats.events_forwarded);
  }
}

TEST(ShardObs, EventStreamIdenticalAcrossLookaheads) {
  auto ref = run_observed(2);
  for (Time lookahead : {Time{1'000}, Time{100'000}, kUsPerSec}) {
    SCOPED_TRACE(lookahead);
    auto got = run_observed(2, lookahead);
    expect_same_events(got->events.events(), ref->events.events());
    EXPECT_EQ(got->stats.event_digest, ref->stats.event_digest);
  }
}

TEST(ShardObs, EventStreamIdenticalAcrossDrainModes) {
  auto inline_drain = run_observed(4, 10'000, /*overlap=*/false);
  auto overlapped = run_observed(4, 10'000, /*overlap=*/true);
  expect_same_events(overlapped->events.events(),
                     inline_drain->events.events());
  EXPECT_EQ(overlapped->stats.event_digest, inline_drain->stats.event_digest);
}

TEST(ShardObs, DigestMatchesRecordedStream) {
  auto run = run_observed(2);
  EventStreamDigest recomputed;
  for (const Event& e : run->events.events()) recomputed.fold(e);
  EXPECT_EQ(recomputed, run->stats.event_digest);
}

TEST(ShardObs, MergedStreamIsCanonicallyOrdered) {
  auto run = run_observed(8);
  const auto& events = run->events.events();
  for (std::size_t i = 1; i < events.size(); ++i)
    ASSERT_FALSE(canonical_event_before(events[i], events[i - 1]))
        << "order violated at " << i;
}

TEST(ShardObs, TracerSpansIdenticalAcrossShardCounts) {
  auto traced_run = [](int shards) {
    Tracer tracer;
    tracer.annotate("shardobs", "mixed", 30'000);
    auto s = tenant_stream();
    ShardedOptions options;
    options.shards = shards;
    options.sink = &tracer;
    simulate_sharded(*s, build_tenant, options,
                     [](const CompletionRecord&) {});
    return tracer.data();
  };
  const TraceData ref = traced_run(1);
  ASSERT_GT(ref.spans.size(), 0u);
  for (int shards : {2, 8}) {
    SCOPED_TRACE(shards);
    const TraceData got = traced_run(shards);
    ASSERT_EQ(got.spans.size(), ref.spans.size());
    for (std::size_t i = 0; i < got.spans.size(); ++i)
      ASSERT_EQ(got.spans[i], ref.spans[i]) << "span " << i;
    EXPECT_EQ(got.faults, ref.faults);
    EXPECT_EQ(got.slack, ref.slack);
    EXPECT_EQ(got.observed, ref.observed);
    EXPECT_EQ(got.dropped, ref.dropped);
  }
}

TEST(ShardObs, MetricSnapshotIdenticalAcrossShardCounts) {
  auto ref = run_observed(1);
  ASSERT_GT(ref->registry.counters().size() + ref->registry.histograms().size() +
                ref->registry.occupancies().size(),
            0u);
  for (int shards : {2, 8}) {
    SCOPED_TRACE(shards);
    auto got = run_observed(shards);
    expect_same_snapshot(got->registry, ref->registry);
  }
}

// ---------------------------------------------------------------------------
// ShardedEventSink unit coverage.

Event make_event(Time time, std::uint64_t seq, std::uint8_t server = 0,
                 EventKind kind = EventKind::kArrival) {
  Event e;
  e.time = time;
  e.seq = seq;
  e.server = server;
  e.kind = kind;
  e.a = static_cast<std::int64_t>(seq) * 3 + server;  // distinguishable
  return e;
}

std::vector<Event> reference_merge(std::vector<Event> events) {
  std::stable_sort(events.begin(), events.end(), canonical_event_before);
  return events;
}

TEST(ShardedSink, LaneInsertionKeepsCanonicalOrder) {
  RecordingSink downstream;
  ShardedEventSink sink(&downstream);
  EventSink* lane = sink.lane(0);
  // A lane's clock never rewinds, but same-instant emissions may arrive
  // seq-descending (e.g. a completion of seq 5 then an arrival of seq 3 at
  // the same instant); the insertion invariant must settle them.
  lane->on_event(make_event(10, 5, 0, EventKind::kCompletion));
  lane->on_event(make_event(10, 3, 0, EventKind::kArrival));
  lane->on_event(make_event(10, 4, 1, EventKind::kDispatch));
  lane->on_event(make_event(20, 1, 0, EventKind::kCompletion));
  EXPECT_EQ(sink.buffered(), 4u);
  sink.flush();
  EXPECT_EQ(sink.buffered(), 0u);
  const auto& got = downstream.events();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].seq, 3u);
  EXPECT_EQ(got[1].seq, 4u);
  EXPECT_EQ(got[2].seq, 5u);
  EXPECT_EQ(got[3].seq, 1u);
}

TEST(ShardedSink, CursorMergeMatchesReferenceSort) {
  RecordingSink downstream;
  ShardedEventSink sink(&downstream);
  std::vector<Event> all;
  // Four lanes with interleaved, gapped timelines; seqs globally unique.
  for (std::uint32_t lane_key = 0; lane_key < 4; ++lane_key) {
    EventSink* lane = sink.lane(lane_key);
    for (std::uint64_t i = 0; i < 50; ++i) {
      const Event e = make_event(
          static_cast<Time>((i * 7 + lane_key * 3) % 90), i * 4 + lane_key,
          static_cast<std::uint8_t>(lane_key));
      // Respect the lane-clock contract: feed each lane time-sorted.
      all.push_back(e);
    }
  }
  std::stable_sort(all.begin(), all.end(), canonical_event_before);
  for (const Event& e : all)
    sink.lane(e.server)->on_event(e);  // lane key == server here
  sink.flush();
  expect_same_events(downstream.events(), reference_merge(all));
  EXPECT_EQ(sink.forwarded(), all.size());
}

TEST(ShardedSink, ManyLaneFallbackMatchesCursorMerge) {
  // 12 active lanes exceeds kMaxLinearMergeLanes: the concat + stable-sort
  // fallback must produce the same canonical stream the cursor merge would.
  RecordingSink downstream;
  ShardedEventSink sink(&downstream);
  std::vector<Event> all;
  for (std::uint32_t lane_key = 0; lane_key < 12; ++lane_key) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      Event e = make_event(static_cast<Time>((i * 11 + lane_key) % 60),
                           i * 16 + lane_key,
                           static_cast<std::uint8_t>(lane_key));
      all.push_back(e);
    }
  }
  std::vector<Event> expected = reference_merge(all);
  // Feed each lane its events in canonical (time-sorted) order.
  std::vector<std::vector<Event>> per_lane(12);
  for (const Event& e : expected) per_lane[e.server].push_back(e);
  for (std::uint32_t k = 0; k < 12; ++k)
    for (const Event& e : per_lane[k]) sink.lane(k)->on_event(e);
  sink.flush();
  expect_same_events(downstream.events(), expected);
}

TEST(ShardedSink, NullDownstreamStillCountsAndDigests) {
  ShardedEventSink counted(nullptr);
  RecordingSink recording;
  ShardedEventSink recorded(&recording);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Event e = make_event(static_cast<Time>(i), i);
    counted.lane(0)->on_event(e);
    recorded.lane(0)->on_event(e);
  }
  counted.flush();
  recorded.flush();
  EXPECT_EQ(counted.forwarded(), 10u);
  EXPECT_EQ(counted.digest(), recorded.digest());
}

TEST(ShardedSink, DigestIsOrderSensitive) {
  EventStreamDigest forward, reversed;
  std::vector<Event> events;
  for (std::uint64_t i = 0; i < 4; ++i)
    events.push_back(make_event(static_cast<Time>(i), i));
  for (const Event& e : events) forward.fold(e);
  for (auto it = events.rbegin(); it != events.rend(); ++it)
    reversed.fold(*it);
  EXPECT_FALSE(forward == reversed);
  EXPECT_FALSE(forward == EventStreamDigest{});
}

TEST(ShardedSink, OverlapDrainMatchesInlineAcrossManyWindows) {
  RecordingSink inline_sink, overlap_sink;
  ShardedEventSink inline_merge(&inline_sink, /*overlap_drain=*/false);
  ShardedEventSink overlap_merge(&overlap_sink, /*overlap_drain=*/true);
  std::uint64_t seq = 0;
  for (int window = 0; window < 25; ++window) {
    for (std::uint32_t lane = 0; lane < 3; ++lane) {
      // Lane 2 stays empty on odd windows — empty lanes must be harmless.
      if (lane == 2 && window % 2 == 1) continue;
      for (int k = 0; k < 5; ++k) {
        const Event e = make_event(static_cast<Time>(window * 100 + k * 7),
                                   seq++, static_cast<std::uint8_t>(lane));
        inline_merge.lane(lane)->on_event(e);
        overlap_merge.lane(lane)->on_event(e);
      }
    }
    inline_merge.flush();
    overlap_merge.flush();
  }
  inline_merge.finish();  // no-op in inline mode
  overlap_merge.finish();
  expect_same_events(overlap_sink.events(), inline_sink.events());
  EXPECT_EQ(overlap_merge.digest(), inline_merge.digest());
  EXPECT_EQ(overlap_merge.forwarded(), inline_merge.forwarded());
}

TEST(ShardedSink, FinishIsIdempotentAndEmptyFlushIsFine) {
  RecordingSink downstream;
  ShardedEventSink sink(&downstream, /*overlap_drain=*/true);
  sink.flush();  // nothing buffered
  sink.lane(7)->on_event(make_event(1, 1, 7));
  sink.flush();
  sink.flush();  // empty again
  sink.finish();
  sink.finish();  // second finish is a no-op
  EXPECT_EQ(downstream.events().size(), 1u);
  EXPECT_EQ(sink.forwarded(), 1u);
}

TEST(ShardedSink, LanePointersAreStableAndKeyed) {
  ShardedEventSink sink(nullptr);
  EventSink* a = sink.lane(5);
  EventSink* b = sink.lane(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.lane(5), a);  // same key, same lane
  sink.lane(9);
  EXPECT_EQ(sink.lane(2), b);  // later creation does not move lanes
}

}  // namespace
}  // namespace qos
