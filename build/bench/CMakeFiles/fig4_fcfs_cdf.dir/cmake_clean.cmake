file(REMOVE_RECURSE
  "CMakeFiles/fig4_fcfs_cdf.dir/fig4_fcfs_cdf.cpp.o"
  "CMakeFiles/fig4_fcfs_cdf.dir/fig4_fcfs_cdf.cpp.o.d"
  "fig4_fcfs_cdf"
  "fig4_fcfs_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fcfs_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
