#include "curves/arrival_curve.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

TEST(ArrivalCurve, CumulativeCountsAtSteps) {
  ArrivalCurve c(make_trace({10, 10, 20, 30}));
  EXPECT_EQ(c.at(5), 0);
  EXPECT_EQ(c.at(10), 2);
  EXPECT_EQ(c.at(15), 2);
  EXPECT_EQ(c.at(20), 3);
  EXPECT_EQ(c.at(30), 4);
  EXPECT_EQ(c.at(1000), 4);
  EXPECT_EQ(c.total(), 4);
}

TEST(ArrivalCurve, AggregatesEqualInstants) {
  ArrivalCurve c(make_trace({10, 10, 10}));
  ASSERT_EQ(c.steps().size(), 1u);
  EXPECT_EQ(c.steps()[0].count, 3);
  EXPECT_EQ(c.steps()[0].cumulative, 3);
}

TEST(ArrivalCurve, EmptyTrace) {
  ArrivalCurve c{Trace()};
  EXPECT_EQ(c.total(), 0);
  EXPECT_EQ(c.at(100), 0);
}

TEST(ArrivalCurve, MonotoneNonDecreasing) {
  ArrivalCurve c(make_trace({1, 5, 5, 9, 12}));
  std::int64_t prev = 0;
  for (Time t = 0; t <= 15; ++t) {
    EXPECT_GE(c.at(t), prev);
    prev = c.at(t);
  }
}

TEST(ArrivalCurve, AtZero) {
  ArrivalCurve c(make_trace({0, 0, 7}));
  EXPECT_EQ(c.at(0), 2);
}

}  // namespace
}  // namespace qos
