#include "stream/sharded.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "runner/thread_pool.h"
#include "sim/engine.h"
#include "util/check.h"

namespace qos::stream {
namespace {

struct Lane {
  std::uint32_t tenant = 0;
  TenantSim sim;
  std::vector<Server*> servers;  ///< raw views for the engine
  std::unique_ptr<SimEngine> engine;
  std::vector<Request> inbox;                 ///< this window's arrivals
  std::vector<CompletionRecord> window_out;   ///< this window's completions
};

bool merged_before(const CompletionRecord& a, const CompletionRecord& b) {
  if (a.finish != b.finish) return a.finish < b.finish;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.server < b.server;
}

}  // namespace

ShardedStats simulate_sharded(
    RequestStream& requests, const TenantFactory& factory,
    const ShardedOptions& options,
    const std::function<void(const CompletionRecord&)>& out) {
  QOS_EXPECTS(options.shards >= 1);
  QOS_EXPECTS(options.lookahead > 0);

  ThreadPool pool(options.shards);
  std::vector<std::unique_ptr<Lane>> lanes;  ///< kept sorted by tenant id
  std::unordered_map<std::uint32_t, Lane*> by_tenant;

  auto lane_for = [&](std::uint32_t tenant) -> Lane& {
    if (auto it = by_tenant.find(tenant); it != by_tenant.end())
      return *it->second;
    auto lane = std::make_unique<Lane>();
    lane->tenant = tenant;
    lane->sim = factory(tenant);
    QOS_CHECK(lane->sim.scheduler != nullptr);
    QOS_CHECK(static_cast<int>(lane->sim.servers.size()) ==
              lane->sim.scheduler->server_count());
    for (auto& s : lane->sim.servers) {
      QOS_CHECK(s != nullptr);
      lane->servers.push_back(s.get());
    }
    lane->engine = std::make_unique<SimEngine>(*lane->sim.scheduler,
                                               lane->servers, nullptr);
    Lane& ref = *lane;
    by_tenant.emplace(tenant, &ref);
    lanes.insert(std::lower_bound(lanes.begin(), lanes.end(), tenant,
                                  [](const std::unique_ptr<Lane>& l,
                                     std::uint32_t t) { return l->tenant < t; }),
                 std::move(lane));
    return ref;
  };

  // The stream contract is validated at the coordinator, exactly as
  // simulate_stream does — lanes then only ever see per-tenant subsequences
  // of an already-checked stream.
  std::uint64_t expected_seq = 0;
  Time prev_arrival = 0;
  auto validate = [&](const Request& r) {
    QOS_CHECK(request_record_ok(r));
    QOS_CHECK(r.seq == expected_seq);
    QOS_CHECK(r.arrival >= prev_arrival);
    ++expected_seq;
    prev_arrival = r.arrival;
  };

  ShardedStats stats;
  const Time delta = options.lookahead;
  std::optional<Request> peek = requests.next();
  if (peek) validate(*peek);
  std::vector<CompletionRecord> merged;

  while (true) {
    // Realign the window to the next event anywhere — buffered stream head
    // or any lane's pending arrival/completion — so empty virtual time
    // costs nothing.
    Time next_event = peek ? peek->arrival : kTimeMax;
    for (const auto& lane : lanes)
      next_event = std::min(next_event, lane->engine->next_event_time());
    if (next_event == kTimeMax) break;
    const Time window = next_event - next_event % delta;
    const Time limit = window > kTimeMax - delta ? kTimeMax : window + delta;

    // Feed: every arrival inside this window goes to its tenant's inbox.
    while (peek && peek->arrival < limit) {
      lane_for(peek->client).inbox.push_back(*peek);
      peek = requests.next();
      if (peek) validate(*peek);
    }

    // Barrier step: all lanes advance to the window edge in parallel.  A
    // lane's evolution is a pure function of its inbox and prior state;
    // the pool only chooses which worker runs it.
    pool.parallel_for(lanes.size(), [&lanes, limit](std::size_t i) {
      Lane& lane = *lanes[i];
      auto collect = [&lane](const CompletionRecord& record) {
        lane.window_out.push_back(record);
      };
      for (const Request& r : lane.inbox) {
        lane.engine->advance_until(r.arrival, collect);
        lane.engine->push_arrival(r);
      }
      lane.inbox.clear();
      lane.engine->advance_until(limit, collect);
    });

    // Canonical merge: tenant-ascending concatenation, then a stable sort
    // on (finish, seq, server).  Every finish in this window precedes every
    // finish of later windows, so per-window emission is globally sorted.
    merged.clear();
    for (auto& lane : lanes) {
      merged.insert(merged.end(), lane->window_out.begin(),
                    lane->window_out.end());
      lane->window_out.clear();
    }
    std::stable_sort(merged.begin(), merged.end(), merged_before);
    for (const CompletionRecord& record : merged) {
      stats.makespan = std::max(stats.makespan, record.finish);
      out(record);
    }
    ++stats.windows;
  }

  for (const auto& lane : lanes) {
    QOS_ENSURES(lane->engine->drained());
    stats.requests += lane->engine->arrivals_delivered();
    stats.dispatches += lane->engine->dispatches();
    stats.completions += lane->engine->completions();
  }
  stats.tenants = lanes.size();
  return stats;
}

SimResult simulate_sharded(RequestStream& requests,
                           const TenantFactory& factory,
                           const ShardedOptions& options) {
  SimResult result;
  simulate_sharded(requests, factory, options,
                   [&result](const CompletionRecord& record) {
                     result.completions.push_back(record);
                   });
  return result;
}

}  // namespace qos::stream
