// Ablation: offload-pool size and routing (the Everest comparison).
//
// Paper Section 2.1 contrasts recombination on the shared server against
// offloading the overflow to separate physical servers "similar in principle
// to the write offloading strategy [Everest]".  This bench sweeps the pool:
// 1, 2 and 4 offload targets (splitting the same total overflow capacity,
// and alternatively scaling it), with round-robin vs least-loaded routing,
// against the paper's shared-server alternatives (FairQueue, Miser).
//
// Execution engine: the offload configurations are custom-factory
// SweepRunner cells (one ConstantRateServer per server_iops entry — primary
// first, then the pool), the shared-server baselines are plain cells; all
// seven evaluate concurrently and cache under label-derived salts.
#include <cstdio>
#include <vector>

#include "core/capacity.h"
#include "core/offload.h"
#include "core/shaper.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  const Time delta = from_ms(10);
  const Trace trace = preset_trace(Workload::kOpenMail, 1200 * kUsPerSec);

  auto cache = options.make_cache();
  SweepRunner runner(options.sweep_options(cache.get()));
  const Digest digest = cache ? hash_trace(trace) : Digest{};
  const double cmin =
      min_capacity_cached(trace, 0.90, delta, cache.get(),
                          cache ? &digest : nullptr)
          .cmin_iops;
  const double dc = overflow_headroom_iops(delta);
  std::printf("OpenMail (1200 s), Cmin(90%%, 10 ms) = %.0f IOPS, dC = %.0f\n\n",
              cmin, dc);

  std::vector<SweepCell> cells;
  auto offload_cell = [&](const std::string& name, int targets,
                          double per_target, OffloadRouting routing) {
    SweepCell cell;
    cell.label = name;
    cell.trace_name = "OpenMail-1200s";
    cell.trace = &trace;
    cell.shaping.policy = Policy::kSplit;  // closest plain analogue, for the row
    cell.shaping.fraction = 0.90;
    cell.shaping.delta = delta;
    cell.shaping.capacity_override_iops = cmin;
    ContentHasher salt;
    salt.str("ablation-offload-v1").str(name);
    cell.custom_salt = salt.digest().lo | 1;
    cell.make_scheduler = [cmin, delta, targets, routing] {
      return std::unique_ptr<Scheduler>(
          std::make_unique<OffloadScheduler>(cmin, delta, targets, routing));
    };
    cell.server_iops.push_back(cmin);
    for (int i = 0; i < targets; ++i) cell.server_iops.push_back(per_target);
    cells.push_back(std::move(cell));
  };

  // Same total overflow capacity dC, split across the pool.
  offload_cell("offload x1 (Split)", 1, dc, OffloadRouting::kRoundRobin);
  offload_cell("offload x2, dC/2 each, RR", 2, dc / 2,
               OffloadRouting::kRoundRobin);
  offload_cell("offload x4, dC/4 each, RR", 4, dc / 4,
               OffloadRouting::kRoundRobin);
  offload_cell("offload x4, dC/4 each, JSQ", 4, dc / 4,
               OffloadRouting::kLeastLoaded);
  // Everest-style: each target is a whole low-utilization disk (dC each).
  offload_cell("offload x4, dC each, RR", 4, dc, OffloadRouting::kRoundRobin);

  // Shared-server alternatives at the same Cmin + dC budget.
  for (Policy p : {Policy::kFairQueue, Policy::kMiser}) {
    SweepCell cell;
    cell.trace_name = "OpenMail-1200s";
    cell.trace = &trace;
    cell.shaping.policy = p;
    cell.shaping.fraction = 0.90;
    cell.shaping.delta = delta;
    cell.shaping.capacity_override_iops = cmin;
    cells.push_back(std::move(cell));
  }

  const std::vector<SweepRow> rows = runner.run_cells(cells);

  AsciiTable table;
  table.add("configuration", "Q1 within 10ms", "Q2 mean (ms)", "Q2 max (ms)");
  for (const SweepRow& row : rows) {
    const ClassReport& q1 = row.report.primary;
    const ClassReport& q2 = row.report.overflow;
    table.add(row.label,
              format_double(
                  100 * (q1.count == 0 ? 1.0 : q1.fraction_within_delta), 2) +
                  "%",
              format_double(q2.count == 0 ? 0 : q2.mean_us / 1000.0, 1),
              format_double(q2.count == 0 ? 0 : to_ms(q2.max), 0));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nhow the pool is split barely matters at a fixed dC budget — the\n"
      "overflow class is capacity-bound either way; the shared-server\n"
      "recombiners (FairQueue/Miser) serve Q2 ~2x faster on the same budget\n"
      "by borrowing the primary's idle capacity (the paper's statistical-\n"
      "multiplexing argument against Split), and only whole-disk Everest\n"
      "targets — extra capacity, not a reshuffled budget — beat them.\n");

  write_bench_json(options, runner, rows.size(), bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: overflow offloading pool (Everest comparison)\n\n");
  run(parse_bench_args(argc, argv, "ablation_offload"));
  return 0;
}
