// SPC-1 style trace parsing.
//
// The UMass Storage Repository traces (WebSearch, Financial/FinTrans) that
// the paper evaluates are distributed in the SPC format:
//
//   ASU,LBA,size_bytes,opcode,timestamp_seconds
//
// with opcode 'r'/'R' for reads and 'w'/'W' for writes and a float timestamp
// in seconds from trace start.  This parser lets those public traces be used
// unchanged when available; the calibrated synthetic presets in
// trace/presets.h stand in for them offline.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "trace/trace.h"

namespace qos {

/// Parse one SPC record line into `out` (seq is left untouched — the
/// consumer numbers records).  False for malformed lines: wrong field count,
/// unparsable numbers, zero or uint32-overflowing block counts, negative /
/// non-finite / unrepresentably large timestamps, unknown opcodes.  Empty
/// lines are malformed too; callers that want parse_spc's skip-counting
/// semantics (blank lines silently ignored, everything else counted) must
/// test for emptiness first.  Shared by parse_spc and the chunked/mmap
/// streaming readers in stream/spc_stream.h so one grammar serves both.
bool parse_spc_line(std::string_view line, Request& out);

/// Parse SPC trace text.  Lines parse_spc_line rejects are skipped; a count
/// of skipped lines can be retrieved via the optional out-param.  The
/// returned trace always satisfies Trace::validate() (non-monotonic input
/// timestamps are sorted by the Trace constructor).
Trace parse_spc(const std::string& text, std::size_t* skipped_lines = nullptr);

/// Serialize a trace to SPC text (one line per request).
std::string to_spc(const Trace& trace);

/// Load and parse an SPC trace file.  Returns nullopt when the file cannot
/// be opened or read (the error path callers must handle); `skipped_lines`
/// reports malformed lines as in parse_spc.
std::optional<Trace> try_load_spc_file(const std::string& path,
                                       std::size_t* skipped_lines = nullptr);

}  // namespace qos
