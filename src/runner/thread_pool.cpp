#include "runner/thread_pool.h"

#include <limits>

#include "util/check.h"

namespace qos {

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<bool> cancelled{false};
  int workers_inside = 0;  ///< workers currently in run_indices (mutex_)

  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads == 0 ? hardware_threads() : threads) {
  QOS_EXPECTS(threads >= 0);
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::run_indices(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1);
    if (i >= job.n) return;
    if (!job.cancelled.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(i);
      } catch (...) {
        std::lock_guard lock(job.error_mutex);
        // Keep the lowest-indexed exception so the rethrown error does not
        // depend on thread interleaving (among the indices that ran).
        if (i < job.error_index) {
          job.error_index = i;
          job.error = std::current_exception();
        }
        job.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    job.finished.fetch_add(1);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_generation_ != seen);
      });
      if (stop_) return;
      job = job_;
      seen = job_generation_;
      ++job->workers_inside;
    }
    run_indices(*job);
    {
      std::lock_guard lock(mutex_);
      if (--job->workers_inside == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    // Serial reference path: in-order, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  {
    std::lock_guard lock(mutex_);
    QOS_CHECK(job_ == nullptr);  // reentrant parallel_for is unsupported
    job_ = &job;
    ++job_generation_;
  }
  wake_.notify_all();

  run_indices(job);  // the calling thread is worker #0

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.finished.load() == n && job.workers_inside == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace qos
