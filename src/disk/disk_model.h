// Mechanical disk model — the DiskSim-style substrate.
//
// The paper's evaluation runs the shaping framework inside DiskSim at the
// device-driver level.  The constant-rate server reproduces the paper's
// analytical capacity model; this module additionally provides a mechanical
// disk so the framework can be exercised end-to-end against a positional
// service-time model: seek (two-regime curve), rotation (position tracked in
// real time) and transfer.  Defaults approximate a 15k RPM enterprise drive
// (Seagate Cheetah class: 0.2 ms track-to-track, ~3.5 ms average seek,
// ~8 ms full-stroke).
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/server.h"
#include "trace/request.h"
#include "util/time.h"

namespace qos {

struct DiskGeometry {
  std::int64_t cylinders = 50'000;
  std::int64_t heads = 4;
  std::int64_t sectors_per_track = 500;  ///< 512 B sectors
  double rpm = 15'000;

  std::int64_t blocks_per_cylinder() const {
    return heads * sectors_per_track;
  }
  std::int64_t total_blocks() const {
    return cylinders * blocks_per_cylinder();
  }
  /// Full revolution time in microseconds.
  Time rotation_period() const {
    return static_cast<Time>(60.0 * 1e6 / rpm);
  }
};

struct SeekProfile {
  Time track_to_track = 200;    ///< us, distance == 1
  Time short_seek_coeff = 60;   ///< us * sqrt(cylinder distance), short range
  std::int64_t short_range = 2'000;  ///< cylinders served by the sqrt regime
  Time long_seek_base = 2'600;  ///< us
  double long_seek_slope = 0.11;  ///< us per cylinder beyond short_range

  /// Seek time for a cylinder distance (0 => 0).
  Time seek_time(std::int64_t distance) const;
};

/// Position on the platter derived from an LBA.
struct DiskPosition {
  std::int64_t cylinder = 0;
  std::int64_t head = 0;
  std::int64_t sector = 0;
};

class DiskModel {
 public:
  DiskModel() = default;
  DiskModel(DiskGeometry geometry, SeekProfile seek)
      : geometry_(geometry), seek_(seek) {}

  const DiskGeometry& geometry() const { return geometry_; }

  /// Attach observability: per-service kDiskService events (a = seek,
  /// b = rotation, c = transfer, all us) and "disk.seek_us" /
  /// "disk.rotation_us" / "disk.transfer_us" histograms.  Null pointers
  /// disable the corresponding output at one branch per service.
  void attach_observability(EventSink* sink, MetricRegistry* registry);

  DiskPosition position_of(std::uint64_t lba) const;

  /// Mechanical service time for a request starting at `now`, advancing the
  /// head/rotational state.  Deterministic given the request sequence.
  Time service_time(const Request& r, Time now);

  std::int64_t current_cylinder() const { return cylinder_; }

 private:
  DiskGeometry geometry_;
  SeekProfile seek_;
  std::int64_t cylinder_ = 0;

  Probe probe_;
  LatencyHistogram* seek_hist_ = nullptr;
  LatencyHistogram* rotation_hist_ = nullptr;
  LatencyHistogram* transfer_hist_ = nullptr;
};

/// Adapts DiskModel to the simulator's Server interface.
class DiskServer final : public Server {
 public:
  DiskServer() = default;
  explicit DiskServer(DiskModel model) : model_(model) {}

  Time service_duration(const Request& r, Time now) override {
    return model_.service_time(r, now);
  }

  void attach_observability(EventSink* sink, MetricRegistry* registry) {
    model_.attach_observability(sink, registry);
  }

  const DiskModel& model() const { return model_; }

 private:
  DiskModel model_;
};

}  // namespace qos
