#include "trace/presets.h"

#include <gtest/gtest.h>

#include "trace/rate_series.h"

namespace qos {
namespace {

class PresetTest : public ::testing::TestWithParam<Workload> {};

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PresetTest,
                         ::testing::Values(Workload::kWebSearch,
                                           Workload::kFinTrans,
                                           Workload::kOpenMail),
                         [](const auto& info) {
                           return workload_long_name(info.param);
                         });

TEST_P(PresetTest, Deterministic) {
  // Short horizon keeps the test fast; determinism is horizon-independent.
  Trace a = preset_trace(GetParam(), 60 * kUsPerSec);
  Trace b = preset_trace(GetParam(), 60 * kUsPerSec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97)
    EXPECT_EQ(a[i].arrival, b[i].arrival);
}

TEST_P(PresetTest, NonTrivialVolume) {
  Trace t = preset_trace(GetParam(), 120 * kUsPerSec);
  EXPECT_GT(t.size(), 1000u);
}

TEST_P(PresetTest, BurstyAtFineGranularity) {
  // All three paper workloads have 100 ms-window peaks well above the mean —
  // the property that drives every experiment.
  Trace t = preset_trace(GetParam(), 600 * kUsPerSec);
  const double peak = t.peak_rate_iops(100'000);
  const double mean = t.mean_rate_iops();
  EXPECT_GT(peak, 2.0 * mean) << "peak " << peak << " mean " << mean;
}

TEST(Presets, NamesAreStable) {
  EXPECT_EQ(workload_name(Workload::kWebSearch), "WS");
  EXPECT_EQ(workload_name(Workload::kFinTrans), "FT");
  EXPECT_EQ(workload_name(Workload::kOpenMail), "OM");
  EXPECT_EQ(workload_long_name(Workload::kOpenMail), "OpenMail");
}

TEST(Presets, DistinctSeeds) {
  EXPECT_NE(preset_seed(Workload::kWebSearch),
            preset_seed(Workload::kFinTrans));
  EXPECT_NE(preset_seed(Workload::kFinTrans),
            preset_seed(Workload::kOpenMail));
}

TEST(Presets, RateOrdering) {
  // The paper's workloads order OM > WS > FT by average rate; the presets
  // must preserve that relation.
  const Time dur = 300 * kUsPerSec;
  const double ws = preset_trace(Workload::kWebSearch, dur).mean_rate_iops();
  const double ft = preset_trace(Workload::kFinTrans, dur).mean_rate_iops();
  const double om = preset_trace(Workload::kOpenMail, dur).mean_rate_iops();
  EXPECT_GT(om, ws);
  EXPECT_GT(ws, ft);
}

TEST(Presets, OpenMailHasHeavyPlateaus) {
  // OpenMail's signature in the paper (Fig. 2): multi-second plateaus several
  // times the mean rate.  Full preset duration: the tall plateaus are rare
  // regime excursions and a short slice can miss them.
  Trace t = preset_trace(Workload::kOpenMail);
  auto series = rate_series(t, kUsPerSec);  // 1 s windows
  auto summary = summarize(series);
  EXPECT_GT(summary.peak_iops, 3.0 * summary.mean_iops);
}

}  // namespace
}  // namespace qos
