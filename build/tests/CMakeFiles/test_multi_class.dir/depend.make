# Empty dependencies file for test_multi_class.
# This may be replaced when dependencies are built.
