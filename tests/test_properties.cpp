// Property-based parameterized sweeps across capacities, deadlines, seeds
// and policies: invariants that must hold for every configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/rtt.h"
#include "core/shaper.h"
#include "curves/analysis.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

Trace property_trace(std::uint64_t seed, double rate) {
  WorkloadSpec spec;
  spec.states = {{rate * 0.5, 1.0}, {rate, 1.0}, {rate * 3, 0.3}};
  spec.batches = {.batches_per_sec = 0.2,
                  .mean_size = 6,
                  .spread_us = 1'500,
                  .giant_prob = 0.05,
                  .giant_factor = 3};
  return generate_workload(spec, 30 * kUsPerSec, seed);
}

// ---------------------------------------------------------------------------
// RTT invariants across (capacity, delta, seed).

using RttParam = std::tuple<double, Time, std::uint64_t>;

class RttProperty : public ::testing::TestWithParam<RttParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RttProperty,
    ::testing::Combine(::testing::Values(100.0, 250.0, 500.0, 1000.0),
                       ::testing::Values<Time>(5'000, 10'000, 50'000),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST_P(RttProperty, AdmittedFinishWithinDeadlinePlusGrid) {
  const auto [capacity, delta, seed] = GetParam();
  Trace t = property_trace(seed, 400);
  Decomposition d = rtt_decompose(t, capacity, delta);
  for (const auto& r : t) {
    if (d.klass[r.seq] != ServiceClass::kPrimary) continue;
    // +1 us: service slots are dithered onto the microsecond grid.
    EXPECT_LE(d.q1_finish[r.seq], r.arrival + delta + 1);
  }
}

TEST_P(RttProperty, DropsBoundedBelowByLemma1) {
  const auto [capacity, delta, seed] = GetParam();
  Trace t = property_trace(seed, 400);
  Decomposition d = rtt_decompose(t, capacity, delta);
  EXPECT_GE(d.dropped(), mandatory_miss_lower_bound(t, capacity, delta));
}

TEST_P(RttProperty, ClassesPartitionTheTrace) {
  const auto [capacity, delta, seed] = GetParam();
  Trace t = property_trace(seed, 400);
  Decomposition d = rtt_decompose(t, capacity, delta);
  std::int64_t primaries = 0;
  for (auto k : d.klass)
    if (k == ServiceClass::kPrimary) ++primaries;
  EXPECT_EQ(primaries, d.admitted);
  EXPECT_EQ(d.total(), static_cast<std::int64_t>(t.size()));
}

// ---------------------------------------------------------------------------
// Capacity search invariants.

class CapacityProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CapacityProperty,
                         ::testing::Values<std::uint64_t>(3, 5, 8, 13));

TEST_P(CapacityProperty, FractionIsMonotoneInCapacity) {
  Trace t = property_trace(GetParam(), 300);
  double prev = 0;
  for (double c = 50; c <= 3200; c *= 2) {
    const double f = fraction_guaranteed(t, c, 10'000);
    EXPECT_GE(f, prev - 1e-12) << "capacity " << c;
    prev = f;
  }
}

TEST_P(CapacityProperty, SearchResultIsFeasibleAndTight) {
  Trace t = property_trace(GetParam(), 300);
  for (double f : {0.9, 0.99, 1.0}) {
    CapacityResult r = min_capacity(t, f, 10'000);
    EXPECT_GE(fraction_guaranteed(t, r.cmin_iops, 10'000), f);
    if (r.cmin_iops > 1) {
      EXPECT_LT(fraction_guaranteed(t, r.cmin_iops - 1, 10'000), f);
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler conservation laws across policies and seeds.

using PolicyParam = std::tuple<Policy, std::uint64_t>;

class PolicyProperty : public ::testing::TestWithParam<PolicyParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyProperty,
    ::testing::Combine(::testing::Values(Policy::kFcfs, Policy::kSplit,
                                         Policy::kFairQueue, Policy::kMiser),
                       ::testing::Values<std::uint64_t>(21, 22, 23)));

TEST_P(PolicyProperty, EveryRequestServedExactlyOnce) {
  const auto [policy, seed] = GetParam();
  Trace t = property_trace(seed, 350);
  ShapingConfig config;
  config.policy = policy;
  config.fraction = 0.9;
  config.delta = 10'000;
  ShapingOutcome out = shape_and_run(t, config);
  ASSERT_EQ(out.sim.completions.size(), t.size());
  std::vector<bool> seen(t.size(), false);
  for (const auto& c : out.sim.completions) {
    ASSERT_LT(c.seq, t.size());
    EXPECT_FALSE(seen[c.seq]) << "duplicate seq " << c.seq;
    seen[c.seq] = true;
  }
}

TEST_P(PolicyProperty, ServiceWindowsValid) {
  const auto [policy, seed] = GetParam();
  Trace t = property_trace(seed, 350);
  ShapingConfig config;
  config.policy = policy;
  config.fraction = 0.9;
  config.delta = 10'000;
  ShapingOutcome out = shape_and_run(t, config);
  Time prev_finish_per_server[2] = {0, 0};
  for (const auto& c : out.sim.completions) {
    EXPECT_GE(c.start, c.arrival);
    EXPECT_GT(c.finish, c.start);
    ASSERT_LT(c.server, 2);
    // Service on one server is serialized: starts never precede the
    // previous finish there (completions arrive in finish order).
    EXPECT_GE(c.start, prev_finish_per_server[c.server]);
    prev_finish_per_server[c.server] = c.finish;
  }
}

TEST_P(PolicyProperty, DeterministicAcrossRuns) {
  const auto [policy, seed] = GetParam();
  Trace t = property_trace(seed, 350);
  ShapingConfig config;
  config.policy = policy;
  config.fraction = 0.9;
  config.delta = 10'000;
  ShapingOutcome a = shape_and_run(t, config);
  ShapingOutcome b = shape_and_run(t, config);
  ASSERT_EQ(a.sim.completions.size(), b.sim.completions.size());
  for (std::size_t i = 0; i < a.sim.completions.size(); ++i) {
    EXPECT_EQ(a.sim.completions[i].seq, b.sim.completions[i].seq);
    EXPECT_EQ(a.sim.completions[i].finish, b.sim.completions[i].finish);
  }
}

}  // namespace
}  // namespace qos
