// Online capacity estimation — dynamic re-profiling of Cmin(f, delta).
//
// The paper profiles a whole trace offline to reserve Cmin + dC.  Real
// tenants drift, so a provider re-profiles on the fly: this estimator keeps
// a sliding window of recent arrivals, re-runs the RTT capacity search over
// the window on a fixed cadence, and smooths the result with an EWMA (rapid
// rise, slow decay by default — capacity should follow load up quickly and
// release cautiously).  Everything reuses the offline planner, so the
// estimate converges exactly to Cmin on stationary input.
#pragma once

#include <deque>

#include "core/capacity.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/time.h"

namespace qos {

/// EWMA with direction-dependent gain — the rise/decay idiom shared by the
/// online capacity estimator here (follow load up fast, release slowly) and
/// the fault-path capacity monitor (follow a capacity *drop* fast, trust a
/// recovery slowly).  Which direction gets the fast gain is the caller's
/// choice of constructor arguments.
class AsymmetricEwma {
 public:
  /// `up_gain` applies when a raw sample exceeds the current value,
  /// `down_gain` when it is below.  Both in (0, 1].
  AsymmetricEwma(double up_gain, double down_gain)
      : up_gain_(up_gain), down_gain_(down_gain) {
    QOS_EXPECTS(up_gain > 0 && up_gain <= 1);
    QOS_EXPECTS(down_gain > 0 && down_gain <= 1);
  }

  /// Fold in one raw sample; returns the new smoothed value.
  double observe(double raw) {
    const double gain = raw > value_ ? up_gain_ : down_gain_;
    value_ += gain * (raw - value_);
    return value_;
  }

  /// Restart the series from `v` (e.g. a known nominal value).
  void reset(double v) { value_ = v; }

  double value() const { return value_; }

 private:
  double up_gain_;
  double down_gain_;
  double value_ = 0;
};

struct AdaptiveConfig {
  double fraction = 0.90;
  Time delta = from_ms(10);
  Time window = 60 * kUsPerSec;            ///< profiling window length
  Time reprofile_interval = 5 * kUsPerSec; ///< how often to re-search
  double rise_gain = 1.0;   ///< EWMA gain when the estimate increases
  double decay_gain = 0.2;  ///< EWMA gain when it decreases
};

class OnlineCapacityEstimator {
 public:
  explicit OnlineCapacityEstimator(AdaptiveConfig config)
      : config_(config), smoothed_(config.rise_gain, config.decay_gain) {
    QOS_EXPECTS(config.window > 0);
    QOS_EXPECTS(config.reprofile_interval > 0);
    QOS_EXPECTS(config.fraction >= 0 && config.fraction <= 1);
  }

  /// Feed one arrival (non-decreasing times).  Returns true when this call
  /// triggered a re-profile.
  bool observe(Time arrival);

  /// Current smoothed capacity estimate (IOPS); 0 until first re-profile.
  double capacity_iops() const { return smoothed_.value(); }

  /// Last raw (unsmoothed) window measurement.
  double last_window_iops() const { return last_raw_; }

  /// Arrivals currently retained in the window.
  std::size_t window_size() const { return window_.size(); }

  int reprofile_count() const { return reprofiles_; }

 private:
  void reprofile(Time now);

  AdaptiveConfig config_;
  std::deque<Time> window_;
  Time last_arrival_ = -1;
  Time next_reprofile_ = 0;
  AsymmetricEwma smoothed_;
  double last_raw_ = 0;
  int reprofiles_ = 0;
};

}  // namespace qos
