// FaultyServer — applies a FaultySchedule to any Server.
//
// A decorator: every service_duration call is forwarded to the wrapped
// server first (so the inner server's state — error-diffusion phase, head
// position — advances exactly as it would fault-free), then the duration is
// inflated according to the window active at dispatch time:
//
//   * kCapacityLoss s: duration / (1 - s), the server running at (1-s)·C;
//   * kStall: the request additionally waits out the rest of the window —
//     duration + (window.end - now);
//   * kLatencySpike: duration + severity microseconds.
//
// Only the window active at the service *start* applies; a window opening
// mid-service does not retroactively stretch it (matching how a dispatched
// disk op runs to completion).  With an empty schedule the decorator is
// bit-identical to the wrapped server.
//
// Observability: with a sink attached (the simulator forwards its own at
// run start), the server emits kFaultBegin/kFaultEnd as the dispatch clock
// crosses window edges, and kSlowService for every inflated request.
// Emission is lazy — edges are announced at the first dispatch at or after
// them — so call flush_events(makespan) after a run to close any windows
// the last dispatches never reached.
#pragma once

#include <cmath>

#include "fault/fault_schedule.h"
#include "obs/sink.h"
#include "sim/server.h"
#include "util/check.h"

namespace qos {

class FaultyServer final : public Server {
 public:
  /// Neither pointer-like argument is owned: `inner` must outlive this
  /// decorator.
  FaultyServer(Server& inner, FaultySchedule schedule)
      : inner_(&inner), schedule_(std::move(schedule)) {
    QOS_EXPECTS(schedule_.validate());
  }

  Time service_duration(const Request& r, Time now) override {
    // Always consult the inner server exactly once so its internal state
    // stream is identical with and without faults.
    const Time base = inner_->service_duration(r, now);
    if (schedule_.empty()) return base;
    announce_until(now);
    const FaultWindow* w = schedule_.active_at(now);
    if (w == nullptr) return base;
    Time inflated = base;
    switch (w->kind) {
      case FaultKind::kCapacityLoss:
        inflated = static_cast<Time>(
            std::ceil(static_cast<double>(base) / (1.0 - w->severity)));
        break;
      case FaultKind::kStall:
        inflated = base + (w->end - now);
        break;
      case FaultKind::kLatencySpike:
        inflated = base + static_cast<Time>(w->severity);
        break;
    }
    QOS_CHECK(inflated >= base);
    if (probe_ && inflated != base) {
      probe_.emit({.time = now,
                   .seq = r.seq,
                   .a = base,
                   .b = inflated,
                   .c = static_cast<std::int64_t>(w->kind),
                   .client = r.client,
                   .kind = EventKind::kSlowService});
    }
    return inflated;
  }

  void attach_observability(EventSink* sink) override { probe_ = Probe(sink); }

  /// Emit kFaultBegin/kFaultEnd for every window edge at or before `until`
  /// that has not been announced yet (the run's makespan, typically).
  void flush_events(Time until) { announce_until(until); }

  const FaultySchedule& schedule() const { return schedule_; }
  Server& inner() { return *inner_; }

 private:
  void announce_until(Time now) {
    if (!probe_) return;
    const auto& windows = schedule_.windows();
    while (announced_ < windows.size()) {
      const FaultWindow& w = windows[announced_];
      if (!begin_emitted_ && w.begin <= now) {
        probe_.emit({.time = w.begin,
                     .a = static_cast<std::int64_t>(w.kind),
                     .b = static_cast<std::int64_t>(w.severity * 1e6),
                     .c = w.end,
                     .kind = EventKind::kFaultBegin});
        begin_emitted_ = true;
      }
      if (begin_emitted_ && w.end <= now) {
        probe_.emit({.time = w.end,
                     .a = static_cast<std::int64_t>(w.kind),
                     .kind = EventKind::kFaultEnd});
        begin_emitted_ = false;
        ++announced_;
        continue;
      }
      break;
    }
  }

  Server* inner_;
  FaultySchedule schedule_;
  Probe probe_;
  std::size_t announced_ = 0;   ///< windows fully announced (begin and end)
  bool begin_emitted_ = false;  ///< kFaultBegin sent for windows_[announced_]
};

}  // namespace qos
