#include "core/rtt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "curves/analysis.h"
#include "trace/generator.h"
#include "util/rng.h"

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

// Maximum number of requests that can all meet their deadline, over every
// subsequence of the trace, served FIFO at integer-period capacity.
// Exponential: only for tiny traces.  Independent oracle for RTT optimality.
std::int64_t brute_force_max_feasible(const Trace& trace,
                                      double capacity_iops, Time delta) {
  const Time period = static_cast<Time>(1e6 / capacity_iops);
  EXPECT_EQ(static_cast<double>(period) * capacity_iops, 1e6)
      << "test requires integer service period";
  const std::size_t n = trace.size();
  std::int64_t best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Time prev_finish = 0;
    bool feasible = true;
    std::int64_t count = 0;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      if (!(mask & (1u << i))) continue;
      const Time start = std::max(trace[i].arrival, prev_finish);
      const Time finish = start + period;
      if (finish > trace[i].arrival + delta) {
        feasible = false;
        break;
      }
      prev_finish = finish;
      ++count;
    }
    if (feasible) best = std::max(best, count);
  }
  return best;
}

TEST(MaxQ1Slots, FloorOfCapacityTimesDelta) {
  EXPECT_EQ(max_q1_slots(1000, 10'000), 10);   // 1000 IOPS * 10 ms
  EXPECT_EQ(max_q1_slots(417, 10'000), 4);     // floor(4.17)
  EXPECT_EQ(max_q1_slots(50, 10'000), 0);      // deadline shorter than slot
  EXPECT_EQ(max_q1_slots(100, 0), 0);
}

TEST(RttAdmission, AdmitsBelowLimit) {
  RttAdmission adm(1000, 10'000);  // maxQ1 = 10
  EXPECT_TRUE(adm.admit(0));
  EXPECT_TRUE(adm.admit(9));
  EXPECT_FALSE(adm.admit(10));
  EXPECT_FALSE(adm.admit(11));
}

TEST(RttDecompose, NoOverloadAdmitsEverything) {
  // 1 request per 10 ms at 1000 IOPS (1 ms service), delta 5 ms.
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) reqs.push_back(Request{.arrival = i * 10'000});
  Decomposition d = rtt_decompose(Trace(std::move(reqs)), 1000, 5'000);
  EXPECT_EQ(d.admitted, 100);
  EXPECT_EQ(d.dropped(), 0);
  EXPECT_DOUBLE_EQ(d.admitted_fraction(), 1.0);
}

TEST(RttDecompose, BurstOverflowsToQ2) {
  // 10 simultaneous requests; C = 1000 IOPS, delta = 5 ms => maxQ1 = 5.
  Trace t = make_trace({0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  Decomposition d = rtt_decompose(t, 1000, 5'000);
  EXPECT_EQ(d.admitted, 5);
  // The first five (in arrival order) are primary.
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_EQ(d.klass[i], ServiceClass::kPrimary);
  for (std::uint64_t i = 5; i < 10; ++i)
    EXPECT_EQ(d.klass[i], ServiceClass::kOverflow);
}

TEST(RttDecompose, SlotFreedByServiceReopens) {
  // maxQ1 = 1 (C = 100, delta = 10 ms).  Request at 0 occupies the slot
  // until 10 ms; request at 5 ms must overflow, request at 10 ms fits.
  Trace t = make_trace({0, 5'000, 10'000});
  Decomposition d = rtt_decompose(t, 100, 10'000);
  EXPECT_EQ(d.klass[0], ServiceClass::kPrimary);
  EXPECT_EQ(d.klass[1], ServiceClass::kOverflow);
  EXPECT_EQ(d.klass[2], ServiceClass::kPrimary);
}

TEST(RttDecompose, ZeroSlotsDivertsAll) {
  Trace t = make_trace({0, 1000});
  Decomposition d = rtt_decompose(t, 50, 10'000);  // maxQ1 = 0
  EXPECT_EQ(d.admitted, 0);
  EXPECT_DOUBLE_EQ(d.admitted_fraction(), 0.0);
}

TEST(RttDecompose, EmptyTrace) {
  Decomposition d = rtt_decompose(Trace(), 100, 10'000);
  EXPECT_EQ(d.admitted, 0);
  EXPECT_DOUBLE_EQ(d.admitted_fraction(), 1.0);
}

TEST(RttDecompose, AdmittedAlwaysMeetDeadline) {
  Trace t = generate_poisson(800, 20 * kUsPerSec, 123);
  const Time delta = 10'000;
  Decomposition d = rtt_decompose(t, 500, delta);
  for (const auto& r : t) {
    if (d.klass[r.seq] != ServiceClass::kPrimary) continue;
    EXPECT_LE(d.q1_finish[r.seq], r.arrival + delta)
        << "seq " << r.seq << " arrival " << r.arrival;
  }
}

TEST(RttDecompose, DropsAtLeastLowerBound) {
  Trace t = generate_poisson(2000, 5 * kUsPerSec, 7);
  const double c = 500;
  const Time delta = 20'000;
  Decomposition d = rtt_decompose(t, c, delta);
  EXPECT_GE(d.dropped(), mandatory_miss_lower_bound(t, c, delta));
}

struct OptimalityCase {
  std::uint64_t seed;
  double capacity;
  Time delta;
  Time horizon;
  double rate;
};

class RttOptimality : public ::testing::TestWithParam<OptimalityCase> {};

INSTANTIATE_TEST_SUITE_P(
    SmallRandomTraces, RttOptimality,
    ::testing::Values(
        OptimalityCase{1, 1000, 3'000, 12'000, 900},
        OptimalityCase{2, 1000, 3'000, 12'000, 900},
        OptimalityCase{3, 500, 4'000, 20'000, 600},
        OptimalityCase{4, 500, 4'000, 20'000, 600},
        OptimalityCase{5, 2000, 2'000, 6'000, 1800},
        OptimalityCase{6, 2000, 2'000, 6'000, 1800},
        OptimalityCase{7, 250, 8'000, 40'000, 300},
        OptimalityCase{8, 250, 8'000, 40'000, 300},
        OptimalityCase{9, 1000, 1'000, 12'000, 1200},
        OptimalityCase{10, 1000, 5'000, 12'000, 1500}));

TEST_P(RttOptimality, MatchesBruteForceOptimum) {
  const auto& param = GetParam();
  // Draw a small random trace (<= 14 requests) and compare RTT's admitted
  // count with the brute-force maximum feasible subsequence.
  Rng rng(param.seed);
  std::vector<Request> reqs;
  const auto count = static_cast<std::size_t>(rng.uniform_int(6, 14));
  for (std::size_t i = 0; i < count; ++i)
    reqs.push_back(Request{.arrival = rng.uniform_int(0, param.horizon)});
  Trace t(std::move(reqs));

  Decomposition d = rtt_decompose(t, param.capacity, param.delta);
  const std::int64_t opt =
      brute_force_max_feasible(t, param.capacity, param.delta);
  EXPECT_EQ(d.admitted, opt)
      << "RTT must admit a maximum feasible set (Lemmas 1-3)";
}

class RttOptimalityTied : public ::testing::TestWithParam<OptimalityCase> {};

INSTANTIATE_TEST_SUITE_P(
    TieHeavyTraces, RttOptimalityTied,
    ::testing::Values(OptimalityCase{11, 1000, 3'000, 12'000, 0},
                      OptimalityCase{12, 1000, 3'000, 12'000, 0},
                      OptimalityCase{13, 500, 4'000, 16'000, 0},
                      OptimalityCase{14, 500, 4'000, 16'000, 0},
                      OptimalityCase{15, 250, 8'000, 24'000, 0},
                      OptimalityCase{16, 2000, 2'000, 8'000, 0}));

TEST_P(RttOptimalityTied, MatchesBruteForceWithSimultaneousArrivals) {
  const auto& param = GetParam();
  // Arrivals snapped to a coarse grid so many requests share instants —
  // stresses the queue-census tie handling (completions before arrivals).
  Rng rng(param.seed);
  std::vector<Request> reqs;
  const auto count = static_cast<std::size_t>(rng.uniform_int(8, 13));
  const Time grid = 2'000;
  for (std::size_t i = 0; i < count; ++i) {
    const Time slot = rng.uniform_int(0, param.horizon / grid);
    reqs.push_back(Request{.arrival = slot * grid});
  }
  Trace t(std::move(reqs));
  Decomposition d = rtt_decompose(t, param.capacity, param.delta);
  EXPECT_EQ(d.admitted,
            brute_force_max_feasible(t, param.capacity, param.delta));
}

TEST(RttDecompose, FractionMonotoneInCapacity) {
  Trace t = generate_poisson(1000, 10 * kUsPerSec, 99);
  double prev = -1;
  for (double c : {100, 200, 400, 800, 1600, 3200}) {
    const double f = rtt_decompose(t, c, 10'000).admitted_fraction();
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

}  // namespace
}  // namespace qos
