// CapacityMonitor — estimates the IOPS a server is actually delivering.
//
// Demand-independent: instead of counting completions per wall-clock second
// (which collapses when the queue is empty), the monitor averages *service
// durations* over a sliding window of recent completions.  For a server
// delivering rate R every service occupies ~1/R, so 1/mean(duration) tracks
// delivered capacity whether the queue is deep or shallow — it only needs
// traffic, not saturation.
//
// The raw windowed estimate is smoothed with the asymmetric-EWMA idiom from
// core/adaptive.h, with the gains flipped: a capacity *drop* is followed
// fast (the Q1 guarantee is already in danger) while a recovery is trusted
// slowly (a brownout often flickers before it clears).
#pragma once

#include <deque>

#include "core/adaptive.h"
#include "util/check.h"
#include "util/time.h"

namespace qos {

struct CapacityMonitorConfig {
  Time window = kUsPerSec / 2;  ///< completion window for the raw estimate
  double tighten_gain = 0.8;    ///< EWMA gain when the estimate falls
  double relax_gain = 0.1;      ///< EWMA gain when it recovers
  std::size_t min_samples = 8;  ///< below this, report the reference rate
};

class CapacityMonitor {
 public:
  /// `reference_iops` is the rate the server is provisioned to deliver; the
  /// estimate starts there and is reported until enough samples arrive.
  CapacityMonitor(double reference_iops, CapacityMonitorConfig config = {})
      : config_(config),
        reference_(reference_iops),
        smoothed_(config.relax_gain, config.tighten_gain) {
    QOS_EXPECTS(reference_iops > 0);
    QOS_EXPECTS(config.window > 0);
    QOS_EXPECTS(config.min_samples > 0);
    smoothed_.reset(reference_iops);
  }

  /// Record one completed service: occupied the server for `duration`
  /// ending at `finish`.  Calls must have non-decreasing `finish`.
  void on_service(Time finish, Time duration) {
    QOS_EXPECTS(duration > 0);
    QOS_EXPECTS(samples_.empty() || finish >= samples_.back().finish);
    samples_.push_back({finish, duration});
    duration_sum_ += duration;
    evict(finish);
    const double raw = raw_estimate();
    if (raw > 0) smoothed_.observe(raw);
  }

  /// Current smoothed delivered-capacity estimate (IOPS).
  double estimate_iops() const { return smoothed_.value(); }

  /// Unsmoothed window estimate; `reference_iops` until min_samples seen.
  double raw_estimate() const {
    if (samples_.size() < config_.min_samples || duration_sum_ <= 0)
      return reference_;
    const double mean_duration_sec =
        to_sec(duration_sum_) / static_cast<double>(samples_.size());
    return 1.0 / mean_duration_sec;
  }

  /// estimate / reference, clamped to [0, 1]: the fraction of provisioned
  /// capacity currently believed delivered.
  double health() const {
    const double h = smoothed_.value() / reference_;
    return h < 0 ? 0 : (h > 1 ? 1 : h);
  }

  double reference_iops() const { return reference_; }
  std::size_t window_size() const { return samples_.size(); }

 private:
  struct Sample {
    Time finish = 0;
    Time duration = 0;
  };

  void evict(Time now) {
    while (!samples_.empty() && samples_.front().finish < now - config_.window) {
      duration_sum_ -= samples_.front().duration;
      samples_.pop_front();
    }
  }

  CapacityMonitorConfig config_;
  double reference_;
  std::deque<Sample> samples_;
  Time duration_sum_ = 0;
  AsymmetricEwma smoothed_;  ///< up = relax (slow), down = tighten (fast)
};

}  // namespace qos
