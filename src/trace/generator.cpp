#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "trace/generator_core.h"
#include "util/check.h"

namespace qos {
namespace {

// All generators funnel through here: sort the arrival skeleton (stably, so
// equal-arrival ties keep generation order — the same order Trace's
// constructor would pick), assign addresses to the *sorted* sequence, and
// check the central invariants.  Assigning addresses after the sort is what
// lets the streaming adapters (stream/gen_stream.h) reproduce the identical
// request sequence: the address stream is a function of the arrival-sorted
// order, which both paths share, not of generator-internal emission order.
Trace finalize(std::vector<Request> out, AddressAssigner& addr) {
  std::stable_sort(out.begin(), out.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (auto& r : out) addr.fill(r);
  Trace trace(std::move(out));
  QOS_ENSURES(trace.validate());
  return trace;
}

}  // namespace

Trace generate_workload(const WorkloadSpec& spec, Time duration,
                        std::uint64_t seed) {
  QOS_EXPECTS(!spec.states.empty());
  QOS_EXPECTS(duration > 0);
  const std::size_t n_states = spec.states.size();
  QOS_EXPECTS(spec.transition.empty() ||
              spec.transition.size() == n_states * n_states);

  const double horizon_sec = to_sec(duration);
  Rng rng(seed);
  MmppCore base(&spec.states, &spec.transition, horizon_sec, rng.fork());
  BatchCore batches(spec.batches, 0, horizon_sec, duration, rng.fork());
  AddressAssigner addr(spec.addresses, rng.fork());

  std::vector<Request> out;
  while (auto t = base.next()) out.push_back(Request{.arrival = *t});
  std::vector<Time> cluster;
  while (batches.next_batch(cluster)) {
    for (Time a : cluster) out.push_back(Request{.arrival = a});
    cluster.clear();
  }
  return finalize(std::move(out), addr);
}

Trace generate_poisson(double rate_iops, Time duration, std::uint64_t seed,
                       const AddressSpec& addr_spec) {
  QOS_EXPECTS(rate_iops > 0 && duration > 0);
  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  PoissonWindowCore core(rate_iops, 0, to_sec(duration), rng);
  std::vector<Request> out;
  while (auto t = core.next()) out.push_back(Request{.arrival = *t});
  return finalize(std::move(out), addr);
}

Trace generate_bmodel(double mean_rate_iops, double b, int levels,
                      Time duration, std::uint64_t seed,
                      const AddressSpec& addr_spec) {
  QOS_EXPECTS(mean_rate_iops > 0 && duration > 0);
  QOS_EXPECTS(b >= 0.5 && b < 1.0);
  QOS_EXPECTS(levels >= 1 && levels <= 40);
  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  const std::int64_t n =
      static_cast<std::int64_t>(mean_rate_iops * to_sec(duration));
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Walk the cascade: at each node, a hashed orientation bit decides which
    // child carries probability mass b.  All requests share orientations
    // (per-seed), which is what concentrates mass into bursts.
    std::uint64_t node = 1;
    Time lo = 0;
    Time width = duration;
    for (int level = 0; level < levels && width > 1; ++level) {
      const bool left_heavy = hash_node(seed, node) & 1;
      const double p_left = left_heavy ? b : 1.0 - b;
      const bool go_left = rng.next_double() < p_left;
      width = width / 2;
      if (!go_left) lo += width;
      node = node * 2 + (go_left ? 0 : 1);
    }
    const Time arrival = lo + (width > 1 ? rng.uniform_int(0, width - 1) : 0);
    out.push_back(Request{.arrival = arrival});
  }
  return finalize(std::move(out), addr);
}

Trace generate_pareto_onoff(double on_rate_iops, double alpha_on,
                            double xm_on_sec, double mean_off_sec,
                            Time duration, std::uint64_t seed,
                            const AddressSpec& addr_spec) {
  QOS_EXPECTS(on_rate_iops > 0 && duration > 0);
  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  ParetoOnOffCore core(on_rate_iops, alpha_on, xm_on_sec, mean_off_sec,
                       to_sec(duration), rng);
  std::vector<Request> out;
  while (auto t = core.next()) out.push_back(Request{.arrival = *t});
  return finalize(std::move(out), addr);
}

RegimeSchedule::RegimeSchedule(std::vector<RegimePhase> phases) {
  std::sort(phases.begin(), phases.end(),
            [](const RegimePhase& a, const RegimePhase& b) {
              return a.begin < b.begin;
            });
  phases_ = std::move(phases);
  QOS_EXPECTS(validate());
}

RegimeSchedule& RegimeSchedule::phase(Time begin, double rate_iops,
                                      BatchSpec batches) {
  phases_.push_back({begin, rate_iops, batches});
  std::sort(phases_.begin(), phases_.end(),
            [](const RegimePhase& a, const RegimePhase& b) {
              return a.begin < b.begin;
            });
  QOS_EXPECTS(validate());
  return *this;
}

const RegimePhase* RegimeSchedule::active_at(Time t) const {
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Time value, const RegimePhase& p) { return value < p.begin; });
  if (it == phases_.begin()) return nullptr;
  return &*std::prev(it);
}

bool RegimeSchedule::validate() const {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const RegimePhase& p = phases_[i];
    if (p.rate_iops < 0) return false;
    if (i == 0 && p.begin != 0) return false;
    if (i > 0 && p.begin <= phases_[i - 1].begin) return false;
  }
  return true;
}

Trace generate_regime_switching(const RegimeSchedule& schedule, Time duration,
                                std::uint64_t seed,
                                const AddressSpec& addr_spec) {
  QOS_EXPECTS(!schedule.empty());
  QOS_EXPECTS(schedule.validate());
  QOS_EXPECTS(duration > 0);

  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  std::vector<Request> out;

  const std::vector<RegimePhase>& phases = schedule.phases();
  std::vector<Time> cluster;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const RegimePhase& ph = phases[i];
    if (ph.begin >= duration) break;
    const Time end = i + 1 < phases.size()
                         ? std::min(phases[i + 1].begin, duration)
                         : duration;
    // Per-phase streams keyed on (seed, phase index): phase content is a
    // function of its own window alone, never of how earlier phases drew.
    PoissonWindowCore base(ph.rate_iops, to_sec(ph.begin), to_sec(end),
                           Rng(hash_node(seed, 2 * i + 1)));
    BatchCore batches(ph.batches, to_sec(ph.begin), to_sec(end), end,
                      Rng(hash_node(seed, 2 * i + 2)));
    while (auto t = base.next()) out.push_back(Request{.arrival = *t});
    while (batches.next_batch(cluster)) {
      for (Time a : cluster) out.push_back(Request{.arrival = a});
      cluster.clear();
    }
  }

  return finalize(std::move(out), addr);
}

}  // namespace qos
