// Quickstart: decompose a bursty workload, size the server, and compare the
// shaped schedule against plain FCFS.
//
//   $ ./quickstart
//
// Walks through the library's core loop in ~60 lines:
//   1. generate (or load) a trace,
//   2. profile Cmin(f, delta) with the RTT-based capacity planner,
//   3. run the Miser-shaped schedule — instrumented with a MetricRegistry
//      and a RecordingSink — and the FCFS baseline at equal total capacity,
//   4. print the ShapingReport (per-class percentiles, Q1/Q2 occupancy,
//      deadline-miss runs) and the head-to-head comparison.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/shaper.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "trace/generator.h"
#include "util/table.h"

using namespace qos;

int main() {
  // 1. A bursty synthetic client: ~250 IOPS on average with occasional
  //    multi-second surges and dense clusters.  (Use trace/spc.h to load a
  //    real SPC trace instead.)
  WorkloadSpec spec;
  spec.states = {{180, 3.0}, {300, 2.0}, {1200, 0.5}};
  spec.batches = {.batches_per_sec = 0.05,
                  .mean_size = 12,
                  .spread_us = 2'000,
                  .giant_prob = 0.05,
                  .giant_factor = 3};
  const Trace trace = generate_workload(spec, 600 * kUsPerSec, 2024);
  std::printf("workload: %zu requests, mean %.0f IOPS, peak(100ms) %.0f IOPS\n",
              trace.size(), trace.mean_rate_iops(),
              trace.peak_rate_iops(100'000));

  // 2. Profile: how much server do we need for "90% within 10 ms"?  And how
  //    much would the traditional worst-case reservation cost?
  const Time delta = from_ms(10);
  const double cmin = min_capacity(trace, 0.90, delta).cmin_iops;
  const double worst = min_capacity(trace, 1.00, delta).cmin_iops;
  const double dc = overflow_headroom_iops(delta);
  std::printf("Cmin(90%%, 10 ms) = %.0f IOPS  (+%.0f IOPS overflow headroom)\n",
              cmin, dc);
  std::printf("Cmin(100%%, 10 ms) = %.0f IOPS  -> graduation saves %.0f%%\n\n",
              worst, 100 * (1 - (cmin + dc) / worst));

  // 3. Run Miser-shaped scheduling and FCFS at the same total capacity.
  //    The shaped run is observed: a MetricRegistry collects occupancy and
  //    admission counters, a RecordingSink captures the full event stream.
  MetricRegistry registry;
  RecordingSink sink;
  ShapingConfig config;
  config.fraction = 0.90;
  config.delta = delta;
  config.policy = Policy::kMiser;
  config.registry = &registry;
  config.sink = &sink;
  ShapingOutcome shaped = shape_and_run(trace, config);
  config.policy = Policy::kFcfs;
  config.registry = nullptr;
  config.sink = nullptr;
  ShapingOutcome baseline = shape_and_run(trace, config);

  // 4. What happened inside the pipeline?  The report summarises per-class
  //    response times, Q1/Q2 occupancy and deadline-miss bursts; the sink's
  //    event counts must reconcile exactly with the simulation result.
  std::printf("%s\n", shaped.report.to_string().c_str());
  const std::uint64_t admits = sink.count(EventKind::kAdmit);
  const std::uint64_t rejects = sink.count(EventKind::kReject);
  const std::uint64_t completions = sink.count(EventKind::kCompletion);
  std::printf("events: %llu admitted + %llu rejected = %llu arrivals; "
              "%llu completions vs %zu simulated -> %s\n\n",
              static_cast<unsigned long long>(admits),
              static_cast<unsigned long long>(rejects),
              static_cast<unsigned long long>(admits + rejects),
              static_cast<unsigned long long>(completions),
              shaped.sim.completions.size(),
              completions == shaped.sim.completions.size() &&
                      admits + rejects == completions
                  ? "reconciled"
                  : "MISMATCH");

  // 5. Compare against the baseline.
  AsciiTable table;
  table.add("scheduler", "within 10ms", "p99 (ms)", "max (ms)");
  auto add_row = [&](const char* name, const ShapingOutcome& out) {
    ResponseStats stats(out.sim.completions);
    table.add(name, format_double(100 * stats.fraction_within(delta), 1) + "%",
              format_double(to_ms(stats.percentile(0.99)), 1),
              format_double(to_ms(stats.max()), 0));
  };
  add_row("Miser (shaped)", shaped);
  add_row("FCFS (baseline)", baseline);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
