#include "runner/hash.h"

#include <cstdio>

#include "core/shaper.h"
#include "fault/fault_schedule.h"
#include "trace/trace.h"

namespace qos {

std::string Digest::to_hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

ContentHasher& ContentHasher::bytes(const void* data, std::size_t n) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hi_ = (hi_ ^ p[i]) * kPrime;
    lo_ = (lo_ ^ p[i]) * kPrime;
    lo_ ^= lo_ >> 29;  // extra mixing keeps the lanes independent
  }
  return *this;
}

Digest hash_trace(const Trace& trace) {
  // The count is folded LAST (after the per-request fields) so the digest
  // can also be produced one request at a time by TraceDigester, which only
  // knows the count at the end.  Folding it at all keeps the empty trace,
  // and any two streams where one is a proper prefix of the other, distinct.
  ContentHasher h;
  for (const Request& r : trace) {
    h.i64(r.arrival);
    h.u64(r.client);
    h.u64(r.lba);
    h.u64(r.size_blocks);
    h.u64(r.is_write ? 1 : 0);
  }
  h.u64(trace.size());
  return h.digest();
}

void TraceDigester::feed(const Request& r) {
  h_.i64(r.arrival);
  h_.u64(r.client);
  h_.u64(r.lba);
  h_.u64(r.size_blocks);
  h_.u64(r.is_write ? 1 : 0);
  ++count_;
}

Digest TraceDigester::finish() {
  h_.u64(count_);
  return h_.digest();
}

void hash_shaping_config(ContentHasher& h, const ShapingConfig& config) {
  h.f64(config.fraction);
  h.i64(config.delta);
  h.u64(static_cast<std::uint64_t>(config.policy));
  h.f64(config.capacity_override_iops);
  h.f64(config.headroom_override_iops);
}

void hash_fault_schedule(ContentHasher& h, const FaultySchedule& faults) {
  h.u64(faults.size());
  for (const FaultWindow& w : faults.windows()) {
    h.i64(w.begin);
    h.i64(w.end);
    h.u64(static_cast<std::uint64_t>(w.kind));
    h.f64(w.severity);
  }
}

}  // namespace qos
