// Trace analysis: queue-timeline reconstruction, deadline-miss attribution,
// and Miser slack accounting over a TraceData.
//
// The attribution taxonomy is total and exclusive: every missed request is
// classified into exactly one cause, decided by a fixed-priority chain —
//
//   1. fault_window       the request was touched by a fault (its service was
//                         inflated, it was demoted by degraded admission, or
//                         its lifetime overlaps a recorded fault window);
//   2. capacity_shortfall the request was *admitted to Q1* (or ran under an
//                         unbounded scheduler that makes no RTT decision) and
//                         still missed — the primary path itself was too slow,
//                         i.e. provisioned capacity < Cmin for the offered
//                         load;
//   3. q2_starvation      an overflow request that missed because it sat in
//                         Q2 longer than the whole deadline — recombination
//                         starved it;
//   4. admission_burst    an overflow request whose Q2 wait was within the
//                         deadline: the miss traces back to the burst that
//                         overflowed Q1 in the first place, not to how Q2 was
//                         drained afterwards.
//
// Fault evidence wins over everything because faults corrupt the other
// signals (an inflated service shows up as apparent capacity shortfall).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace qos {

enum class MissCause : std::uint8_t {
  kFaultWindow = 0,
  kAdmissionBurst = 1,
  kQ2Starvation = 2,
  kCapacityShortfall = 3,
};
inline constexpr int kMissCauseCount = 4;

const char* miss_cause_name(MissCause cause);

/// One missed request and the cause class it was attributed to.
struct MissAttribution {
  RequestSpan span;
  MissCause cause = MissCause::kCapacityShortfall;
};

/// Attribution over a whole trace.
struct AttributionReport {
  std::vector<MissAttribution> misses;  ///< one entry per missed request
  std::uint64_t completed = 0;          ///< spans with a full lifecycle
  std::uint64_t met = 0;                ///< completed within delta
  std::uint64_t by_cause[kMissCauseCount] = {0, 0, 0, 0};
};

/// Classify one completed span that missed `delta`.  Precondition: the span
/// is complete and response_us() > delta.
MissCause attribute_miss(const RequestSpan& span, const TraceData& trace,
                         Time delta);

/// Attribute every deadline miss in `trace` against deadline `delta`
/// (microseconds).  Incomplete spans (cut off by sampling or ring eviction)
/// are skipped and do not count as completed.
AttributionReport attribute_misses(const TraceData& trace, Time delta);

/// One point of the reconstructed queue timeline: queue depths immediately
/// after the instant's enqueue/dispatch activity.
struct QueuePoint {
  Time time = 0;
  std::int64_t q1 = 0;
  std::int64_t q2 = 0;
};

/// Rebuild Q1/Q2 depth over time from span enqueue/service-start instants.
/// Exact when sample_every == 1; a depth *estimate* under sampling.
std::vector<QueuePoint> reconstruct_queue_timeline(const TraceData& trace);

/// Miser slack accounting over the recorded slack series.
struct SlackReport {
  std::uint64_t samples = 0;          ///< slack-funded Q2 dispatches
  std::int64_t min_slack = 0;         ///< minimum funding slack seen
  std::uint64_t violations = 0;       ///< dispatches with slack < 1 (never
                                      ///< expected: Miser requires >= 1)
  std::uint64_t near_violations = 0;  ///< dispatches at exactly slack == 1
};

SlackReport miser_slack_report(const TraceData& trace);

/// Human-readable analysis of one trace: span/queue summary, per-cause miss
/// table, and slack accounting.  This is what tools/trace_analyze prints.
std::string trace_analysis_text(const TraceData& trace, Time delta);

}  // namespace qos
