file(REMOVE_RECURSE
  "CMakeFiles/test_clook.dir/test_clook.cpp.o"
  "CMakeFiles/test_clook.dir/test_clook.cpp.o.d"
  "test_clook"
  "test_clook.pdb"
  "test_clook[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
