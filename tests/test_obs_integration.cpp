// End-to-end observability: the event stream and metric registry produced by
// an instrumented run must reconcile exactly with the SimResult the
// simulator returns — admits with Q1 completions, rejects with Q2, and the
// analytic rtt_decompose replay with its own counters.
#include <gtest/gtest.h>

#include "core/rtt.h"
#include "core/shaper.h"
#include "disk/disk_model.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/simulator.h"
#include "trace/presets.h"

namespace qos {
namespace {

class ObsReconciliationTest : public ::testing::TestWithParam<Policy> {};

INSTANTIATE_TEST_SUITE_P(DecomposingPolicies, ObsReconciliationTest,
                         ::testing::Values(Policy::kSplit, Policy::kFairQueue,
                                           Policy::kMiser),
                         [](const auto& info) {
                           return policy_name(info.param);
                         });

TEST_P(ObsReconciliationTest, EventCountsMatchSimResultClassTotals) {
  const Trace trace = preset_trace(Workload::kWebSearch, 60 * kUsPerSec);
  MetricRegistry registry;
  RecordingSink sink;
  ShapingConfig config;
  config.policy = GetParam();
  config.fraction = 0.90;
  config.delta = from_ms(10);
  config.registry = &registry;
  config.sink = &sink;
  const ShapingOutcome out = shape_and_run(trace, config);

  std::uint64_t q1 = 0, q2 = 0;
  for (const auto& c : out.sim.completions) {
    (c.klass == ServiceClass::kPrimary ? q1 : q2) += 1;
  }

  // RTT admit/reject events == Q1/Q2 completion totals.
  EXPECT_EQ(sink.count(EventKind::kAdmit), q1);
  EXPECT_EQ(sink.count(EventKind::kReject), q2);
  // The registry counters saw the same decisions.
  EXPECT_EQ(registry.counter("rtt.admitted").value(), q1);
  EXPECT_EQ(registry.counter("rtt.rejected").value(), q2);
  // Every request arrived, dispatched and completed exactly once.
  EXPECT_EQ(sink.count(EventKind::kArrival), trace.size());
  EXPECT_EQ(sink.count(EventKind::kDispatch), trace.size());
  EXPECT_EQ(sink.count(EventKind::kCompletion), trace.size());
  EXPECT_EQ(q1 + q2, trace.size());

  // The report folds the same totals in.
  EXPECT_EQ(out.report.admitted, q1);
  EXPECT_EQ(out.report.rejected, q2);
  EXPECT_EQ(out.report.primary.count, q1);
  EXPECT_EQ(out.report.overflow.count, q2);
}

TEST_P(ObsReconciliationTest, OccupancyStaysWithinRttBound) {
  const Trace trace = preset_trace(Workload::kWebSearch, 60 * kUsPerSec);
  MetricRegistry registry;
  ShapingConfig config;
  config.policy = GetParam();
  config.fraction = 0.90;
  config.delta = from_ms(10);
  config.registry = &registry;
  const ShapingOutcome out = shape_and_run(trace, config);

  // lenQ1 is capped by RTT at maxQ1 = floor(Cmin * delta).
  const auto max_q1 = max_q1_slots(out.cmin_iops, config.delta);
  const OccupancySeries& q1 = registry.occupancy("q1.occupancy");
  ASSERT_FALSE(q1.empty());
  EXPECT_LE(q1.max(), max_q1);
  EXPECT_GT(q1.max(), 0);
  EXPECT_GE(q1.mean(), 0.0);
}

TEST(ObsIntegration, MiserEmitsSlackDispatchPerOverflowService) {
  const Trace trace = preset_trace(Workload::kOpenMail, 30 * kUsPerSec);
  MetricRegistry registry;
  RecordingSink sink;
  ShapingConfig config;
  config.policy = Policy::kMiser;
  config.fraction = 0.90;
  config.delta = from_ms(10);
  config.registry = &registry;
  config.sink = &sink;
  const ShapingOutcome out = shape_and_run(trace, config);

  std::uint64_t q2 = 0;
  for (const auto& c : out.sim.completions)
    q2 += c.klass == ServiceClass::kOverflow;
  // Every overflow service was funded by a slack decision, and each carried
  // the minimum primary slack at that instant (>= 1 whenever Q1 was backlogged).
  EXPECT_EQ(sink.count(EventKind::kSlackDispatch), q2);
  EXPECT_EQ(registry.histogram("miser.dispatch_slack").count(), q2);
  for (const Event& e : sink.events()) {
    if (e.kind == EventKind::kSlackDispatch) {
      EXPECT_GE(e.a, 1);
    }
  }
}

TEST(ObsIntegration, RttDecomposeFillsRegistry) {
  const Trace trace = preset_trace(Workload::kFinTrans, 60 * kUsPerSec);
  MetricRegistry registry;
  const Decomposition d =
      rtt_decompose(trace, 200.0, from_ms(10), &registry);
  EXPECT_EQ(registry.counter("rtt.admitted").value(),
            static_cast<std::uint64_t>(d.admitted));
  EXPECT_EQ(registry.counter("rtt.rejected").value(),
            static_cast<std::uint64_t>(d.dropped()));
  const OccupancySeries& q1 = registry.occupancy("q1.occupancy");
  EXPECT_LE(q1.max(), max_q1_slots(200.0, from_ms(10)));
}

TEST(ObsIntegration, DiskModelReportsServiceBreakdown) {
  MetricRegistry registry;
  RecordingSink sink;
  DiskModel model;
  model.attach_observability(&sink, &registry);
  Request r;
  r.lba = 123'456'789;
  r.size_blocks = 8;
  const Time total = model.service_time(r, 0);
  ASSERT_EQ(sink.events().size(), 1u);
  const Event& e = sink.events().front();
  EXPECT_EQ(e.kind, EventKind::kDiskService);
  EXPECT_EQ(e.a + e.b + e.c, total);  // seek + rotation + transfer
  EXPECT_EQ(registry.histogram("disk.seek_us").count(), 1u);
  EXPECT_EQ(registry.histogram("disk.rotation_us").count(), 1u);
  EXPECT_EQ(registry.histogram("disk.transfer_us").count(), 1u);
}

}  // namespace
}  // namespace qos
