// Content hashing for the result cache (runner/result_cache.h).
//
// Cache keys must be a pure function of everything that can change a cell's
// result: the trace bytes, the shaping configuration, the fault schedule and
// any evaluator salt.  ContentHasher is a streaming 128-bit hash built from
// two independent 64-bit FNV-1a streams — not cryptographic, but with 128
// bits the accidental-collision probability over any realistic sweep is
// negligible, and the digest is stable across platforms and processes (the
// on-disk cache tier depends on that).  Doubles are hashed by bit pattern so
// two configs hash equal iff they compare bit-equal.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.h"

namespace qos {

class Trace;
struct ShapingConfig;
class FaultySchedule;

/// 128-bit content digest; the cache's key type.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest&, const Digest&) = default;

  /// 32 lowercase hex chars — the on-disk cache file stem.
  std::string to_hex() const;
};

/// Streaming FNV-1a over two independent 64-bit lanes.
class ContentHasher {
 public:
  ContentHasher& bytes(const void* data, std::size_t n);
  ContentHasher& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }
  ContentHasher& u64(std::uint64_t v) { return bytes(&v, sizeof(v)); }
  ContentHasher& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }
  ContentHasher& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

  Digest digest() const { return {hi_, lo_}; }

 private:
  // Distinct offset bases decorrelate the lanes; both use the standard
  // 64-bit FNV prime.
  std::uint64_t hi_ = 0xcbf29ce484222325ull;
  std::uint64_t lo_ = 0x9ae16a3b2f90404full;
};

struct Request;

/// Digest of a trace's full request stream (arrival, client, lba, size,
/// direction per request).  O(n); hot consumers hash each trace once and
/// reuse the digest across cells.  Equals a TraceDigester fed the same
/// requests in the same order — streamed runs key the cache identically to
/// materialized ones.
Digest hash_trace(const Trace& trace);

/// Incremental form of hash_trace for sources that never materialize a
/// Trace: feed() each request in arrival order, then finish() once.  The
/// request count is folded at finish (hash_trace folds the identical value),
/// so the digest never depends on knowing the length up front.
class TraceDigester {
 public:
  void feed(const Request& r);

  /// Finalize; feed() must not be called afterwards.
  Digest finish();

  std::uint64_t count() const { return count_; }

 private:
  ContentHasher h_;
  std::uint64_t count_ = 0;
};

/// Fold the simulation-relevant ShapingConfig fields (fraction, delta,
/// policy, capacity/headroom overrides) into `h`.  Observability pointers
/// and the server decorator are excluded: the former cannot change results,
/// the latter is not hashable — callers interposing a decorator must salt
/// the key themselves.
void hash_shaping_config(ContentHasher& h, const ShapingConfig& config);

/// Fold a fault schedule's windows into `h`.
void hash_fault_schedule(ContentHasher& h, const FaultySchedule& faults);

}  // namespace qos
