#include "trace/generator_core.h"

#include <algorithm>

#include "util/check.h"

namespace qos {

std::uint64_t hash_node(std::uint64_t seed, std::uint64_t node) {
  std::uint64_t z = seed ^ (node * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---- MmppCore ----

MmppCore::MmppCore(const std::vector<MmppState>* states,
                   const std::vector<double>* transition, double horizon_sec,
                   Rng rng)
    : states_(states), transition_(transition), rng_(rng),
      horizon_(horizon_sec) {
  QOS_EXPECTS(states_ != nullptr && !states_->empty());
  QOS_EXPECTS(transition_ != nullptr);
  QOS_EXPECTS(transition_->empty() ||
              transition_->size() == states_->size() * states_->size());
  if (horizon_ <= 0) done_ = true;  // the one-shot loop never entered
}

void MmppCore::begin_dwell() {
  const MmppState& st = (*states_)[state_];
  const double dwell = rng_.exponential(st.mean_dwell_sec);
  end_ = std::min(horizon_, t_ + dwell);
  if (st.rate_iops > 0) {
    a_ = t_;
    in_dwell_ = true;
  } else {
    finish_dwell();
  }
}

void MmppCore::finish_dwell() {
  in_dwell_ = false;
  t_ = end_;
  const std::size_t n_states = states_->size();
  if (transition_->empty()) {
    if (n_states > 1) {
      std::size_t next = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n_states) - 2));
      if (next >= state_) ++next;
      state_ = next;
    }
  } else {
    const double u = rng_.next_double();
    double acc = 0;
    std::size_t next = n_states - 1;
    for (std::size_t j = 0; j < n_states; ++j) {
      acc += (*transition_)[state_ * n_states + j];
      if (u < acc) {
        next = j;
        break;
      }
    }
    state_ = next;
  }
  if (t_ >= horizon_) done_ = true;
}

std::optional<Time> MmppCore::next() {
  while (!done_) {
    if (in_dwell_) {
      const MmppState& st = (*states_)[state_];
      a_ += rng_.exponential(1.0 / st.rate_iops);
      if (a_ < end_) return from_sec(a_);
      finish_dwell();
    } else {
      begin_dwell();
    }
  }
  return std::nullopt;
}

// ---- BatchCore ----

BatchCore::BatchCore(const BatchSpec& spec, double start_sec, double end_sec,
                     Time clip, Rng rng)
    : spec_(spec), end_(end_sec), clip_(clip), rng_(rng), b_(start_sec) {
  if (spec_.batches_per_sec > 0) {
    alive_ = true;
    advance_frontier();
  }
}

void BatchCore::advance_frontier() {
  b_ += rng_.exponential(1.0 / spec_.batches_per_sec);
  if (b_ >= end_) {
    alive_ = false;
    frontier_ = kTimeMax;
  } else {
    frontier_ = from_sec(b_);
  }
}

bool BatchCore::next_batch(std::vector<Time>& out) {
  if (!alive_) return false;
  double size = static_cast<double>(rng_.geometric(1.0 / spec_.mean_size));
  if (spec_.giant_prob > 0 && rng_.next_double() < spec_.giant_prob) {
    size *= spec_.giant_factor;
  }
  const Time base = from_sec(b_);
  std::int64_t count = static_cast<std::int64_t>(size);
  if (spec_.max_size > 0 && count > spec_.max_size) count = spec_.max_size;
  for (std::int64_t i = 0; i < count; ++i) {
    const Time arrival = base + rng_.uniform_int(0, spec_.spread_us);
    if (arrival >= clip_) continue;
    out.push_back(arrival);
  }
  advance_frontier();
  return true;
}

// ---- ParetoOnOffCore ----

ParetoOnOffCore::ParetoOnOffCore(double on_rate_iops, double alpha_on,
                                 double xm_on_sec, double mean_off_sec,
                                 double horizon_sec, Rng rng)
    : rng_(rng), horizon_(horizon_sec), on_rate_(on_rate_iops),
      alpha_on_(alpha_on), xm_on_(xm_on_sec), mean_off_(mean_off_sec),
      mean_gap_(1.0 / on_rate_iops) {
  QOS_EXPECTS(on_rate_iops > 0);
}

std::optional<Time> ParetoOnOffCore::next() {
  while (!done_) {
    if (in_on_) {
      a_ += rng_.exponential(mean_gap_);
      if (a_ < end_) return from_sec(a_);
      in_on_ = false;
      t_ = end_;
      on_ = false;
      if (t_ >= horizon_) done_ = true;
    } else if (t_ >= horizon_) {
      done_ = true;
    } else if (on_) {
      end_ = std::min(horizon_, t_ + rng_.pareto(alpha_on_, xm_on_));
      a_ = t_;
      in_on_ = true;
    } else {
      t_ += rng_.exponential(mean_off_);
      on_ = true;
    }
  }
  return std::nullopt;
}

}  // namespace qos
