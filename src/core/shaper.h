// WorkloadShaper — the library's high-level entry point.
//
// Wires the whole paper pipeline together: profile the workload for
// Cmin(f, delta), pick a recombination policy, build the server(s) and run
// the trace through the event simulator.  Examples and benches use this
// facade; every piece is also available individually.
#pragma once

#include <memory>
#include <vector>

#include "core/capacity.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace qos {

enum class Policy {
  kFcfs,       ///< no decomposition (baseline)
  kSplit,      ///< dedicated overflow server
  kFairQueue,  ///< shared server, proportional-share multiplexing (SFQ)
  kMiser,      ///< shared server, slack scheduling
};

const char* policy_name(Policy p);

struct ShapingConfig {
  double fraction = 0.90;  ///< QoS target: fraction meeting the deadline
  Time delta = from_ms(10);
  Policy policy = Policy::kMiser;
  /// > 0 overrides the profiled Cmin (e.g. to reuse a cached value).
  double capacity_override_iops = 0;
  /// >= 0 overrides the overflow headroom dC; default is 1/delta.
  double headroom_override_iops = -1;
};

struct ShapingOutcome {
  double cmin_iops = 0;
  double headroom_iops = 0;
  SimResult sim;

  double total_iops() const { return cmin_iops + headroom_iops; }
};

/// Build the scheduler for `policy`.  Exposed so benches can drive policies
/// directly with custom fair schedulers.
std::unique_ptr<Scheduler> make_scheduler(Policy policy, double cmin_iops,
                                          Time delta, double headroom_iops);

/// Profile (unless overridden), schedule and simulate.  FCFS receives the
/// same total capacity (Cmin + dC) on a single server, matching the paper's
/// equal-resources comparison.
ShapingOutcome shape_and_run(const Trace& trace, const ShapingConfig& config);

}  // namespace qos
