file(REMOVE_RECURSE
  "CMakeFiles/test_gnuplot.dir/test_gnuplot.cpp.o"
  "CMakeFiles/test_gnuplot.dir/test_gnuplot.cpp.o.d"
  "test_gnuplot"
  "test_gnuplot.pdb"
  "test_gnuplot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnuplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
