// Reproduces Figure 2: shaping the OpenMail trace by decomposition and
// recombination.
//
// Emits three gnuplot-ready series (100 ms windows, IOPS):
//   (a) the original workload,
//   (b) the Q1 class (90% of requests) after RTT decomposition at
//       Cmin(90%, 10 ms),
//   (c) the full workload after Miser recombination (service-completion
//       rate), which restores 100% of the requests while staying smooth.
// Printed as a compact summary plus down-sampled series.
#include <cstdio>
#include <cstring>

#include "analysis/gnuplot.h"
#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/miser.h"
#include "core/rtt.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "trace/rate_series.h"
#include "util/table.h"

namespace {

using namespace qos;

void print_series(const char* name, const std::vector<RatePoint>& series,
                  std::size_t stride) {
  std::printf("# series: %s (time_s iops), every %zu-th 100 ms window\n",
              name, stride);
  for (std::size_t i = 0; i < series.size(); i += stride)
    std::printf("%.1f %.0f\n", to_sec(series[i].window_start),
                series[i].iops);
  std::printf("\n");
}

std::vector<GnuplotWriter::Point> to_points(
    const std::vector<RatePoint>& series) {
  std::vector<GnuplotWriter::Point> out;
  out.reserve(series.size());
  for (const auto& p : series)
    out.push_back({to_sec(p.window_start), p.iops});
  return out;
}

void run(const char* gnuplot_dir) {
  const Time delta = from_ms(10);
  const double target = 0.90;
  const Trace trace = preset_trace(Workload::kOpenMail);

  const double cmin = min_capacity(trace, target, delta).cmin_iops;
  const double dc = overflow_headroom_iops(delta);
  std::printf("Figure 2: shaping the OpenMail workload\n");
  std::printf("trace: %zu requests, mean %.0f IOPS, peak (100 ms) %.0f IOPS\n",
              trace.size(), trace.mean_rate_iops(),
              trace.peak_rate_iops(100'000));
  std::printf("Cmin(90%%, 10 ms) = %.0f IOPS, dC = %.0f IOPS\n\n", cmin, dc);

  // (a) original arrival series.
  auto original = rate_series(trace, 100'000);

  // (b) Q1 arrivals after decomposition.
  Decomposition d = rtt_decompose(trace, cmin, delta);
  std::vector<Time> q1_arrivals;
  for (const auto& r : trace)
    if (d.klass[r.seq] == ServiceClass::kPrimary)
      q1_arrivals.push_back(r.arrival);
  auto decomposed = rate_series(q1_arrivals, 100'000);

  // (c) completion series after Miser recombination at Cmin + dC.
  MiserScheduler miser(cmin, delta);
  ConstantRateServer server(cmin + dc);
  SimResult sim = simulate(trace, miser, server);
  std::vector<Time> completions;
  for (const auto& c : sim.completions) completions.push_back(c.finish);
  auto recombined = rate_series(completions, 100'000);

  AsciiTable summary;
  summary.add("series", "requests", "peak IOPS", "mean IOPS");
  auto add = [&](const char* name, std::size_t n,
                 const std::vector<RatePoint>& s) {
    auto sum = summarize(s);
    summary.add(name, static_cast<unsigned long long>(n),
                format_double(sum.peak_iops, 0),
                format_double(sum.mean_iops, 0));
  };
  add("(a) original workload", trace.size(), original);
  add("(b) Q1 after RTT (90%)", q1_arrivals.size(), decomposed);
  add("(c) recombined (Miser)", sim.completions.size(), recombined);
  std::printf("%s\n", summary.to_string().c_str());

  const std::size_t stride = 50;  // print every 5 s to keep output compact
  print_series("original", original, stride);
  print_series("decomposed_q1", decomposed, stride);
  print_series("recombined_miser", recombined, stride);

  if (gnuplot_dir) {
    GnuplotWriter w;
    w.set_title("Figure 2: shaping the OpenMail workload");
    w.set_labels("time (s)", "request rate (IOPS)");
    w.add_series("original", to_points(original));
    w.add_series("Q1 after RTT (90%)", to_points(decomposed));
    w.add_series("recombined (Miser)", to_points(recombined));
    w.write(gnuplot_dir, "fig2_shaping");
    std::printf("# gnuplot artifacts written to %s/fig2_shaping.{dat,gp}\n",
                gnuplot_dir);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* gnuplot_dir = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--gnuplot") == 0) gnuplot_dir = argv[i + 1];
  run(gnuplot_dir);
  return 0;
}
