// Control plane: QosController guardrails, ControlledTenantScheduler
// mechanics, and the closed-loop harness (controller vs static under chaos,
// determinism across thread counts and cache states, online differential).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <optional>
#include <vector>

#include "control/control_loop.h"
#include "control/controlled_scheduler.h"
#include "control/controller.h"
#include "control/harness.h"
#include "core/capacity.h"
#include "core/multi_tenant.h"
#include "obs/sink.h"
#include "online/shaper.h"
#include "runner/parallel_capacity.h"
#include "runner/result_cache.h"
#include "runner/thread_pool.h"
#include "sim/server.h"
#include "trace/generator.h"
#include "util/clock.h"
#include "util/time.h"

namespace qos {
namespace {

// Feed `count` synthetic arrivals for `tenant` at a steady `rate` ending at
// `end` into the controller's demand window.
void feed_arrivals(QosController& ctrl, std::uint32_t tenant, double rate,
                   Time end, int count) {
  const Time gap = from_sec(1.0 / rate);
  Time t = end - gap * count;
  for (int i = 0; i < count; ++i) {
    t += gap;
    ctrl.on_event({.time = t, .client = tenant, .kind = EventKind::kArrival});
  }
}

ControllerConfig small_config() {
  ControllerConfig cfg;
  cfg.fraction = 0.95;
  cfg.delta = from_ms(10);
  cfg.epoch = kUsPerSec;
  cfg.demand_window = 2 * kUsPerSec;
  cfg.min_window_arrivals = 16;
  cfg.min_share_iops = 10;
  cfg.max_share_fraction = 0.8;
  cfg.step_fraction = 0.5;
  cfg.hysteresis = 0.05;
  return cfg;
}

TEST(Controller, UnstableWindowKeepsLastGoodPlan) {
  QosController ctrl(small_config(), {200, 200}, 500);
  // No arrivals at all: every window is unstable, demands stay at the
  // initial shares, hysteresis suppresses the no-op epoch.
  const std::vector<double> alloc = ctrl.run_epoch(kUsPerSec);
  EXPECT_EQ(alloc, (std::vector<double>{200, 200}));
  EXPECT_EQ(ctrl.stats().epochs, 1u);
  EXPECT_EQ(ctrl.stats().skipped, 1u);
  EXPECT_EQ(ctrl.stats().resolves, 0u);
  EXPECT_EQ(ctrl.stats().unstable_windows, 2u);
}

TEST(Controller, ReprovisionsTowardShiftedDemand) {
  ControllerConfig cfg = small_config();
  QosController ctrl(cfg, {200, 200}, 1000);
  // Tenant 0 now runs hot (~600 IOPS), tenant 1 went idle.
  feed_arrivals(ctrl, 0, 600, kUsPerSec, 600);
  const std::vector<double>& alloc = ctrl.run_epoch(kUsPerSec);
  EXPECT_GT(alloc[0], 250);  // moved up toward demand…
  EXPECT_LE(alloc[0], 200 * (1 + cfg.step_fraction));  // …but step-bounded
  EXPECT_EQ(alloc[1], 200);  // idle window unstable: demand kept, no move
  EXPECT_EQ(ctrl.stats().applied, 1u);
  EXPECT_EQ(ctrl.stats().resolves, 1u);
}

TEST(Controller, GuardrailsClampDesiredShares) {
  ControllerConfig cfg = small_config();
  cfg.max_share_fraction = 0.3;
  cfg.step_fraction = 100;  // effectively unbounded step: isolate the cap
  QosController ctrl(cfg, {200, 200}, 1000);
  feed_arrivals(ctrl, 0, 2000, kUsPerSec, 1200);
  const std::vector<double>& alloc = ctrl.run_epoch(kUsPerSec);
  const double budget = 1000 - overflow_headroom_iops(cfg.delta);
  EXPECT_LE(alloc[0], cfg.max_share_fraction * budget + 1e-9);
  EXPECT_GE(alloc[1], cfg.min_share_iops);
}

TEST(Controller, HealthScalesBudget) {
  ControllerConfig cfg = small_config();
  cfg.step_fraction = 100;
  QosController ctrl(cfg, {400, 400}, 1000);
  feed_arrivals(ctrl, 0, 600, kUsPerSec, 600);
  feed_arrivals(ctrl, 1, 600, kUsPerSec, 600);
  ctrl.set_health(0.5);  // brownout: only half the capacity is real
  const std::vector<double>& alloc = ctrl.run_epoch(kUsPerSec);
  const double budget = (1000 - overflow_headroom_iops(cfg.delta)) * 0.5;
  EXPECT_LE(alloc[0] + alloc[1], budget + 2 * cfg.min_share_iops + 1e-9);
}

TEST(Controller, BreachBoostPrefersBreachedTenant) {
  ControllerConfig cfg = small_config();
  cfg.step_fraction = 100;
  QosController a(cfg, {200, 200}, 2000);
  QosController b(cfg, {200, 200}, 2000);
  for (QosController* c : {&a, &b}) {
    feed_arrivals(*c, 0, 400, kUsPerSec, 400);
    feed_arrivals(*c, 1, 400, kUsPerSec, 400);
  }
  b.on_event(
      {.time = kUsPerSec / 2, .client = 0, .kind = EventKind::kSlaBreach});
  const double plain = a.run_epoch(kUsPerSec)[0];
  const double boosted = b.run_epoch(kUsPerSec)[0];
  EXPECT_GT(boosted, plain);
  EXPECT_TRUE(b.in_breach(0));
  EXPECT_FALSE(b.in_breach(1));
}

TEST(Controller, HysteresisSkipsSmallMoves) {
  ControllerConfig cfg = small_config();
  cfg.hysteresis = 0.5;  // huge deadband
  QosController ctrl(cfg, {200, 200}, 1000);
  feed_arrivals(ctrl, 0, 210, kUsPerSec, 210);  // barely above current
  ctrl.run_epoch(kUsPerSec);
  EXPECT_EQ(ctrl.stats().skipped, 1u);
  EXPECT_EQ(ctrl.allocation()[0], 200);
  // A breach transition overrides the deadband even for small moves.
  feed_arrivals(ctrl, 0, 210, 2 * kUsPerSec, 210);
  ctrl.on_event(
      {.time = kUsPerSec + 1, .client = 0, .kind = EventKind::kSlaBreach});
  ctrl.run_epoch(2 * kUsPerSec);
  EXPECT_EQ(ctrl.stats().applied, 1u);
}

TEST(Controller, DeterministicAcrossPoolsAndCache) {
  auto run = [](ThreadPool* pool, ResultCache* cache) {
    QosController ctrl(small_config(), {200, 300}, 1000, cache, pool);
    for (int e = 1; e <= 3; ++e) {
      feed_arrivals(ctrl, 0, 500 + 100 * e, e * kUsPerSec, 300);
      feed_arrivals(ctrl, 1, 150, e * kUsPerSec, 150);
      ctrl.run_epoch(e * kUsPerSec);
    }
    return ctrl.allocation();
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  ResultCache cache;
  const std::vector<double> base = run(nullptr, nullptr);
  EXPECT_EQ(run(&serial, nullptr), base);
  EXPECT_EQ(run(&wide, nullptr), base);
  EXPECT_EQ(run(&wide, &cache), base);  // cold cache
  EXPECT_EQ(run(&wide, &cache), base);  // warm cache
  EXPECT_EQ(run(&serial, &cache), base);
  // Bit-identity, not approximate equality.
  const std::vector<double> again = run(&wide, &cache);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(again[i]),
              std::bit_cast<std::uint64_t>(base[i]));
  }
}

// ---------------------------------------------------------------------------

TEST(ControlledScheduler, PerTenantBoundsAndSharedQ1) {
  // Tenant bounds: 500 IOPS * 10 ms = 5 slots; 100 IOPS * 10 ms = 1 slot.
  ControlledTenantScheduler sched({500, 100}, from_ms(10), 700);
  Request r;
  for (int i = 0; i < 7; ++i) {
    r.seq = static_cast<std::uint64_t>(i);
    r.client = 0;
    sched.on_arrival(r, i);
  }
  EXPECT_EQ(sched.len_q1(0), 5);  // 5 admitted, 2 overflowed
  r.seq = 100;
  r.client = 1;
  sched.on_arrival(r, 10);
  EXPECT_EQ(sched.len_q1(1), 1);  // own bound, unaffected by tenant 0
  r.seq = 101;
  sched.on_arrival(r, 11);
  EXPECT_EQ(sched.len_q1(1), 1);  // second arrival overflows

  // Q1 drains strictly before Q2, FIFO across tenants.
  auto d = sched.next_for(0, 20);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->klass, ServiceClass::kPrimary);
  EXPECT_EQ(d->request.seq, 0u);
}

TEST(ControlledScheduler, ReprovisionMovesBoundAndFlagsDemotions) {
  ControlledTenantScheduler sched({500, 500}, from_ms(10), 1100);
  RecordingSink events;
  sched.attach_observability(&events, nullptr);
  // Shrink tenant 0 to 100 IOPS (1 slot): arrivals the 500-IOPS plan would
  // have admitted are now demotions, not plain rejects.
  sched.set_tenant_capacity(0, 100);
  EXPECT_EQ(sched.allocation(0), 100);
  Request r;
  for (int i = 0; i < 3; ++i) {
    r.seq = static_cast<std::uint64_t>(i);
    r.client = 0;
    sched.on_arrival(r, i);
  }
  EXPECT_EQ(sched.len_q1(0), 1);
  EXPECT_EQ(sched.demotions(), 2u);
  ASSERT_EQ(events.events().size(), 3u);
  EXPECT_EQ(events.events()[0].kind, EventKind::kAdmit);
  EXPECT_EQ(events.events()[1].kind, EventKind::kDemote);
  EXPECT_EQ(events.events()[1].client, 0u);
  EXPECT_EQ(events.events()[1].b, 5);  // planned bound
  // Growing the share back re-admits immediately.
  sched.set_tenant_capacity(0, 500);
  r.seq = 10;
  sched.on_arrival(r, 10);
  EXPECT_EQ(sched.len_q1(0), 2);
}

TEST(ControlledScheduler, Q2RoundRobinAcrossTenants) {
  ControlledTenantScheduler sched({100, 100, 100}, from_ms(10), 400);
  Request r;
  std::uint64_t seq = 0;
  // Fill each tenant's single Q1 slot, then two Q2 entries each.
  for (std::uint32_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 3; ++i) {
      r.seq = seq++;
      r.client = c;
      sched.on_arrival(r, 0);
    }
  }
  // Drain Q1 (3 requests), then Q2 must alternate tenants 0,1,2,0,1,2.
  std::vector<std::uint32_t> q2_order;
  Time now = 1;
  while (auto d = sched.next_for(0, now)) {
    if (d->klass == ServiceClass::kOverflow)
      q2_order.push_back(d->request.client);
    sched.on_complete(d->request, d->klass, 0, now + 1);
    now += 2;
  }
  EXPECT_EQ(q2_order, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

// ---------------------------------------------------------------------------

// Tenant mix for the end-to-end runs: half the tenants shift hot after the
// profiling prefix (the static under-provisioning the controller fixes),
// the other half go quiet (the slack it harvests).
std::vector<Trace> shifting_tenants(std::size_t n, Time duration,
                                    std::uint64_t seed) {
  std::vector<Trace> tenants;
  tenants.reserve(n);
  const Time shift = 6 * kUsPerSec;
  for (std::size_t i = 0; i < n; ++i) {
    RegimeSchedule schedule;
    if (i % 2 == 0) {
      schedule.phase(0, 480).phase(shift, 960);  // cold prefix, hot tail
    } else {
      schedule.phase(0, 960).phase(shift, 480);  // hot prefix, cold tail
    }
    tenants.push_back(
        generate_regime_switching(schedule, duration, seed + 17 * i + 1));
  }
  return tenants;
}

ControlPlaneConfig harness_config(ControlMode mode) {
  ControlPlaneConfig config;
  config.fraction = 0.95;
  config.delta = from_ms(10);
  config.mode = mode;
  config.profile_window = 5 * kUsPerSec;
  config.controller.epoch = kUsPerSec;
  config.controller.demand_window = 2 * kUsPerSec;
  config.controller.step_fraction = 0.5;
  return config;
}

TEST(ControlPlane, ControllerBeatsStaticUnderRegimeShift) {
  const std::vector<Trace> tenants = shifting_tenants(8, 20 * kUsPerSec, 42);
  ControlPlaneConfig cfg_static = harness_config(ControlMode::kStatic);
  ControlPlaneConfig cfg_ctrl = harness_config(ControlMode::kController);
  // At these rates the Cmin plans are tight multiples of the means: total
  // demand just fits total capacity while the static per-tenant split is
  // wrong after the shift.  The brownout then shrinks delivered capacity
  // below what the static bounds admit into Q1 — its FIFO backlog exceeds
  // what drains within delta and the guarantee breaks for everyone.  The
  // controller re-tightens admission to monitored health instead.
  FaultySchedule faults;
  faults.brownout(8 * kUsPerSec, 16 * kUsPerSec, 0.5);
  cfg_static.faults = faults;
  cfg_ctrl.faults = faults;

  const ControlOutcome st = run_control_plane(tenants, cfg_static);
  const ControlOutcome ct = run_control_plane(tenants, cfg_ctrl);
  EXPECT_EQ(st.total_iops, ct.total_iops);  // same physical budget
  // Static admits into Q1 far beyond the browned-out drain rate: the FIFO
  // backlog blows the deadline for (essentially) every tenant's guarantee.
  EXPECT_GE(st.tail_violation_fraction, 0.5);
  // The controller re-tightens to delivered capacity and holds it.
  EXPECT_LE(ct.tail_violation_fraction, 0.25);
  EXPECT_LT(ct.q1_miss_fraction, st.q1_miss_fraction / 2);
  EXPECT_GT(ct.demotions, st.demotions);  // the excess is shed, not admitted
  EXPECT_GT(ct.epochs, 0u);
  EXPECT_GT(ct.applied, 0u);
  EXPECT_GT(ct.reprovisions, 0u);
  // The controller moved capacity toward the tenants that went hot.
  double hot_gain = 0;
  for (std::size_t i = 0; i < tenants.size(); i += 2)
    hot_gain += ct.tenants[i].final_iops - ct.tenants[i].planned_iops;
  EXPECT_GT(hot_gain, 0.0);
}

TEST(ControlPlane, BitIdenticalAcrossPoolsAndCacheStates) {
  const std::vector<Trace> tenants = shifting_tenants(4, 12 * kUsPerSec, 7);
  ControlPlaneConfig config = harness_config(ControlMode::kController);
  config.faults.brownout(7 * kUsPerSec, 8 * kUsPerSec, 0.3);

  auto fingerprint = [&](ThreadPool* pool, ResultCache* cache) {
    ControlPlaneConfig c = config;
    c.pool = pool;
    c.cache = cache;
    const ControlOutcome out = run_control_plane(tenants, c);
    std::vector<std::uint64_t> bits;
    bits.push_back(std::bit_cast<std::uint64_t>(out.tail_violation_fraction));
    bits.push_back(std::bit_cast<std::uint64_t>(out.q1_miss_fraction));
    bits.push_back(std::bit_cast<std::uint64_t>(out.total_iops));
    bits.push_back(out.reprovisions);
    bits.push_back(out.demotions);
    for (const TenantOutcome& t : out.tenants) {
      bits.push_back(t.misses);
      bits.push_back(std::bit_cast<std::uint64_t>(t.final_iops));
    }
    for (const CompletionRecord& r : out.sim.completions) {
      bits.push_back(static_cast<std::uint64_t>(r.finish));
      bits.push_back(r.seq);
    }
    return bits;
  };

  ThreadPool serial(1);
  ThreadPool wide(8);
  ResultCache cache;
  const auto base = fingerprint(nullptr, nullptr);
  EXPECT_EQ(fingerprint(&serial, nullptr), base);
  EXPECT_EQ(fingerprint(&wide, nullptr), base);
  EXPECT_EQ(fingerprint(&wide, &cache), base);  // cold
  EXPECT_EQ(fingerprint(&wide, &cache), base);  // warm
  EXPECT_EQ(fingerprint(&serial, &cache), base);
}

TEST(ControlPlane, LocalDegradedSitsBetweenModes) {
  const std::vector<Trace> tenants = shifting_tenants(6, 16 * kUsPerSec, 9);
  ControlPlaneConfig config = harness_config(ControlMode::kLocalDegraded);
  config.faults.brownout(7 * kUsPerSec, 9 * kUsPerSec, 0.4);
  const ControlOutcome out = run_control_plane(tenants, config);
  // Local degradation demotes instead of reallocating: no controller, no
  // reprovisions, but the shared data path and accounting still run.
  EXPECT_EQ(out.reprovisions, 0u);
  EXPECT_EQ(out.epochs, 0u);
  EXPECT_GT(out.demotions, 0u);
  for (std::size_t i = 0; i < tenants.size(); ++i)
    EXPECT_EQ(out.tenants[i].final_iops, out.tenants[i].planned_iops);
}

// ---------------------------------------------------------------------------

// Forwards to a target bound after construction — breaks the ordering cycle
// between Shaper (whose ctor wires sinks) and the ControlLoop (which needs
// the scheduler the Shaper's factory builds).
struct LateSink final : EventSink {
  EventSink* target = nullptr;
  void on_event(const Event& e) override {
    if (target != nullptr) target->on_event(e);
  }
};

TEST(ControlPlane, OnlineShaperMatchesOfflineHarness) {
  // The *same* ControlLoop class closes the loop on both sides: offline as
  // simulate()'s sink, online as the Shaper's sink.  Drive the identical
  // merged trace through online::Shaper (admit / poll_dispatch /
  // on_completion against one ConstantRateServer) with the simulator's
  // event order (completions before arrivals at equal instants, dispatch
  // after both) and assert completions, reprovision count and final
  // allocations are bit-identical to run_control_plane's.
  const std::vector<Trace> tenants = shifting_tenants(4, 12 * kUsPerSec, 21);
  ControlPlaneConfig config = harness_config(ControlMode::kController);

  const ControlOutcome offline = run_control_plane(tenants, config);

  // Re-derive the static plan exactly as the harness does.
  std::vector<Trace> prefixes;
  for (const Trace& t : tenants)
    prefixes.push_back(t.slice(0, config.profile_window));
  ThreadPool serial(1);
  const std::vector<TenantSpec> specs = plan_tenant_specs_parallel(
      serial, prefixes, config.fraction, config.delta, nullptr);
  std::vector<double> allocations;
  double planned_total = 0;
  for (const TenantSpec& s : specs) {
    allocations.push_back(std::max(s.cmin_iops, 1.0));
    planned_total += allocations.back();
  }
  const double total = planned_total + overflow_headroom_iops(config.delta);

  ControllerConfig ctrl_cfg = config.controller;
  ctrl_cfg.fraction = config.fraction;
  ctrl_cfg.delta = config.delta;
  QosController controller(ctrl_cfg, allocations, total);

  LateSink late;
  online::ShaperOptions options;
  options.shaping.delta = config.delta;
  options.shaping.sink = &late;
  ControlledTenantScheduler* raw_sched = nullptr;
  options.make_custom_scheduler = [&]() {
    auto s = std::make_unique<ControlledTenantScheduler>(
        allocations, config.delta, total);
    raw_sched = s.get();
    return std::unique_ptr<Scheduler>(std::move(s));
  };
  VirtualClock clock;
  online::Shaper shaper(options, clock);
  ASSERT_NE(raw_sched, nullptr);

  ControlLoopConfig loop_config;
  loop_config.epoch = config.controller.epoch;
  loop_config.sla_fraction = config.fraction;
  loop_config.delta = config.delta;
  loop_config.breach = config.breach;
  ControlLoop loop(loop_config, tenants.size(), raw_sched, &controller,
                   nullptr);
  late.target = &loop;  // every Shaper event now drives the loop

  const Trace merged = Trace::merge(tenants);
  ConstantRateServer server(total);

  struct InFlight {
    Request request;
    ServiceClass klass;
    Time finish;
  };
  std::optional<InFlight> in_flight;  // single backend => at most one
  std::size_t next_arrival = 0;
  std::vector<CompletionRecord> completions;

  auto drain = [&](Time now) {
    for (const online::DispatchCommand& cmd : shaper.poll_dispatch(now)) {
      const Time duration = server.service_duration(cmd.request, now);
      in_flight = InFlight{cmd.request, cmd.klass, now + duration};
      completions.push_back({cmd.request.seq, cmd.request.client,
                             cmd.request.arrival, now, now + duration,
                             cmd.klass, 0});
    }
  };

  while (next_arrival < merged.size() || in_flight.has_value()) {
    const Time arrival_t =
        next_arrival < merged.size() ? merged[next_arrival].arrival : kTimeMax;
    const Time completion_t =
        in_flight.has_value() ? in_flight->finish : kTimeMax;
    const Time now = std::min(arrival_t, completion_t);
    clock.advance_to(now);
    // Completions strictly before arrivals at the same instant, dispatch
    // only after both — simulate()'s loop shape.
    if (in_flight.has_value() && in_flight->finish == now) {
      const InFlight f = *in_flight;
      in_flight.reset();
      shaper.on_completion(f.request, f.klass, 0, now);
    }
    while (next_arrival < merged.size() &&
           merged[next_arrival].arrival == now) {
      (void)shaper.admit(merged[next_arrival], now);
      ++next_arrival;
    }
    drain(now);
  }

  ASSERT_EQ(completions.size(), offline.sim.completions.size());
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i].seq, offline.sim.completions[i].seq);
    EXPECT_EQ(completions[i].finish, offline.sim.completions[i].finish);
    EXPECT_EQ(completions[i].klass, offline.sim.completions[i].klass);
  }
  EXPECT_EQ(loop.reprovisions(), offline.reprovisions);
  EXPECT_GT(loop.reprovisions(), 0u);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(raw_sched->allocation(t)),
              std::bit_cast<std::uint64_t>(offline.tenants[t].final_iops))
        << "tenant " << t;
  }
  EXPECT_EQ(shaper.demotions(), offline.demotions);
}

TEST(ControlPlane, ShaperReconfigureAppliesAtomically) {
  // The reconfigure() seam: an external controller shrinks a tenant's share
  // between admissions; the very next decision sees the new bound.
  online::ShaperOptions options;
  options.shaping.delta = from_ms(10);
  options.make_custom_scheduler = [] {
    return std::unique_ptr<Scheduler>(
        std::make_unique<ControlledTenantScheduler>(std::vector<double>{500.0},
                                                    from_ms(10), 600.0));
  };
  VirtualClock clock;
  online::Shaper shaper(options, clock);

  Request r;
  r.seq = 0;
  EXPECT_EQ(shaper.admit(r, 0).admit, online::Admit::kQ1);
  shaper.reconfigure([](Scheduler& s, Time) {
    static_cast<ControlledTenantScheduler&>(s).set_tenant_capacity(0, 100);
  });
  r.seq = 1;
  const online::Decision d = shaper.admit(r, 1);
  EXPECT_EQ(d.admit, online::Admit::kQ2);  // 1-slot bound already occupied
  EXPECT_TRUE(d.demoted);                  // planned bound would have taken it
  EXPECT_EQ(shaper.demotions(), 1u);
}

}  // namespace
}  // namespace qos
