file(REMOVE_RECURSE
  "CMakeFiles/bq_fq.dir/drr.cpp.o"
  "CMakeFiles/bq_fq.dir/drr.cpp.o.d"
  "CMakeFiles/bq_fq.dir/pclock.cpp.o"
  "CMakeFiles/bq_fq.dir/pclock.cpp.o.d"
  "CMakeFiles/bq_fq.dir/sfq.cpp.o"
  "CMakeFiles/bq_fq.dir/sfq.cpp.o.d"
  "CMakeFiles/bq_fq.dir/wf2q.cpp.o"
  "CMakeFiles/bq_fq.dir/wf2q.cpp.o.d"
  "CMakeFiles/bq_fq.dir/wfq.cpp.o"
  "CMakeFiles/bq_fq.dir/wfq.cpp.o.d"
  "libbq_fq.a"
  "libbq_fq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_fq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
