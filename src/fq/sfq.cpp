#include "fq/sfq.h"

#include <algorithm>

namespace qos {

SfqScheduler::SfqScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  for (const double w : weights) QOS_EXPECTS(w > 0);
  flow_count_ = static_cast<int>(weights.size());
  dense_weights_ = std::move(weights);
  head_start_.reset(flow_count_);
}

SfqScheduler SfqScheduler::uniform(int flow_count, double weight) {
  QOS_EXPECTS(flow_count > 0);
  QOS_EXPECTS(weight > 0);
  SfqScheduler s;
  s.flow_count_ = flow_count;
  s.uniform_weight_ = weight;
  s.head_start_.reset(flow_count);
  return s;
}

std::uint32_t SfqScheduler::activate(int flow) {
  const std::uint32_t slot = index_.find_or_insert(flow);
  if (slot == state_.size()) {
    state_.emplace_back();
    state_.back().weight = weight_of(flow);
  }
  return slot;
}

void SfqScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                           Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  QOS_EXPECTS(cost > 0);
  const std::uint32_t slot = activate(flow);
  FlowState& f = state_[slot];
  Item item;
  item.handle = handle;
  item.start = std::max(v_, f.last_finish);
  item.finish = item.start + cost / f.weight;
  f.last_finish = item.finish;
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty)
    head_start_.push(static_cast<int>(slot), TagKey{item.start, flow});
}

std::optional<FqDispatch> SfqScheduler::dequeue(Time) {
  if (head_start_.empty()) return std::nullopt;
  const int slot = head_start_.top();
  const int flow = head_start_.top_key().second;
  FlowState& f = state_[static_cast<std::size_t>(slot)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  v_ = item.start;  // SFQ: virtual time tracks the start tag in service
  if (f.queue.empty())
    head_start_.pop();
  else
    head_start_.update(slot, TagKey{f.queue.front().start, flow});
  return FqDispatch{flow, item.handle};
}

bool SfqScheduler::empty() const { return head_start_.empty(); }

std::size_t SfqScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  const std::uint32_t slot = index_.find(flow);
  return slot == FlatSlotMap::kNoSlot ? 0 : state_[slot].queue.size();
}

std::size_t SfqScheduler::approx_memory_bytes() const {
  std::size_t queues = 0;
  for (const FlowState& f : state_) queues += f.queue.capacity() * sizeof(Item);
  return index_.memory_bytes() + state_.capacity() * sizeof(FlowState) +
         queues + head_start_.memory_bytes() +
         dense_weights_.capacity() * sizeof(double);
}

}  // namespace qos
