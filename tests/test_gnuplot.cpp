#include "analysis/gnuplot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace qos {
namespace {

GnuplotWriter sample_writer() {
  GnuplotWriter w;
  w.add_series("first", {{0, 1}, {1, 2}});
  w.add_series("second", {{0, 10}});
  w.set_title("demo");
  w.set_labels("time (s)", "IOPS");
  return w;
}

TEST(Gnuplot, DatHasOneBlockPerSeries) {
  const std::string dat = sample_writer().dat_content();
  EXPECT_NE(dat.find("# first\n0 1\n1 2\n"), std::string::npos);
  EXPECT_NE(dat.find("# second\n0 10\n"), std::string::npos);
  // Blocks separated by a double blank line.
  EXPECT_NE(dat.find("\n\n\n# second"), std::string::npos);
}

TEST(Gnuplot, ScriptPlotsEveryIndex) {
  const std::string gp = sample_writer().script_content("fig");
  EXPECT_NE(gp.find("set output 'fig.png'"), std::string::npos);
  EXPECT_NE(gp.find("'fig.dat' index 0"), std::string::npos);
  EXPECT_NE(gp.find("'fig.dat' index 1"), std::string::npos);
  EXPECT_NE(gp.find("title 'first'"), std::string::npos);
  EXPECT_NE(gp.find("set title 'demo'"), std::string::npos);
  EXPECT_NE(gp.find("set xlabel 'time (s)'"), std::string::npos);
}

TEST(Gnuplot, LogscaleOptIn) {
  GnuplotWriter w = sample_writer();
  EXPECT_EQ(w.script_content("f").find("logscale"), std::string::npos);
  w.set_logscale_x(true);
  EXPECT_NE(w.script_content("f").find("set logscale x"),
            std::string::npos);
}

TEST(Gnuplot, WritesFiles) {
  GnuplotWriter w = sample_writer();
  w.write("/tmp", "burstqos_gnuplot_test");
  std::ifstream dat("/tmp/burstqos_gnuplot_test.dat");
  std::ifstream gp("/tmp/burstqos_gnuplot_test.gp");
  ASSERT_TRUE(dat.good());
  ASSERT_TRUE(gp.good());
  std::stringstream s;
  s << dat.rdbuf();
  EXPECT_EQ(s.str(), w.dat_content());
  std::remove("/tmp/burstqos_gnuplot_test.dat");
  std::remove("/tmp/burstqos_gnuplot_test.gp");
}

TEST(Gnuplot, EmptyWriterProducesEmptyDat) {
  GnuplotWriter w;
  EXPECT_TRUE(w.dat_content().empty());
  EXPECT_EQ(w.series_count(), 0u);
}

}  // namespace
}  // namespace qos
