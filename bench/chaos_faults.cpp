// Chaos harness: fault intensity x recombination policy.
//
// Sweeps a mid-trace capacity brownout of increasing depth (0 to 50% loss)
// across the four recombination policies plus the degraded-admission RTT,
// and reports per cell:
//
//   * Q1 miss fraction — requests classified Q1 that missed delta;
//   * demotion rate — arrivals sent to Q2 that nominal RTT would have
//     admitted (degraded admission only);
//   * time-to-recover — how long after the fault cleared the last Q1 miss
//     finished.
//
// The punchline row is the last: static RTT turns the entire brownout into
// Q1 misses, DegradedRtt re-tightens maxQ1 = C_hat * delta and converts the
// overload into demotions, keeping the Q1 guarantee honest.  A second sweep
// holds intensity at 30% and stretches the brownout to show the static
// miss fraction growing with fault length while the degraded one stays put.
//
// Execution engine: both sweeps are SweepRunner cell lists (32 cells total)
// evaluated concurrently; the chaos metrics ride in each row's "chaos.*"
// extras and round-trip through the result cache, so warm re-runs print the
// tables without a single simulation.
#include <cstdio>

#include "core/capacity.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "trace/generator.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Time kDelta = from_ms(10);
constexpr double kFraction = 0.95;
constexpr std::uint64_t kSeed = 1609;

// kStaticRtt and kDegradedRtt share the strict-priority scheduler and
// differ only in whether the capacity monitor drives admission — isolating
// the admission policy from the recombination policy.
enum class Mode { kPolicy, kStaticRtt, kDegradedRtt };

struct CellSpec {
  const char* name;
  Policy policy;
  Mode mode;
};

constexpr CellSpec kCellSpecs[] = {
    {"FCFS", Policy::kFcfs, Mode::kPolicy},
    {"Split", Policy::kSplit, Mode::kPolicy},
    {"FairQueue", Policy::kFairQueue, Mode::kPolicy},
    {"Miser", Policy::kMiser, Mode::kPolicy},
    {"RTT (static)", Policy::kMiser, Mode::kStaticRtt},
    {"RTT (degraded)", Policy::kMiser, Mode::kDegradedRtt},
};

SweepCell make_cell(const Trace& trace, const CellSpec& spec, double cmin,
                    const FaultySchedule& faults, double intensity) {
  SweepCell cell;
  cell.label = spec.name;
  cell.trace_name = "poisson-800";
  cell.trace = &trace;
  cell.shaping.policy = spec.policy;
  cell.shaping.fraction = kFraction;
  cell.shaping.delta = kDelta;
  cell.shaping.capacity_override_iops = cmin;
  cell.faults = faults;
  cell.use_chaos = true;  // loss-0 baseline cells need chaos.* extras too
  cell.use_degraded_admission = spec.mode != Mode::kPolicy;
  cell.degraded.enabled = spec.mode == Mode::kDegradedRtt;
  cell.fault_intensity = intensity;
  cell.seed = kSeed;
  return cell;
}

void sweep_intensity(SweepRunner& runner, const Trace& trace, double cmin) {
  std::printf("-- Sweep 1: brownout depth (10 s window) x policy --\n");
  std::vector<SweepCell> cells;
  for (double loss : {0.0, 0.15, 0.30, 0.50}) {
    FaultySchedule faults;
    if (loss > 0) faults.brownout(10 * kUsPerSec, 20 * kUsPerSec, loss);
    for (const CellSpec& spec : kCellSpecs)
      cells.push_back(make_cell(trace, spec, cmin, faults, loss));
  }
  const std::vector<SweepRow> rows = runner.run_cells(cells);

  AsciiTable table;
  table.add("policy", "loss", "Q1 miss frac", "demotion rate",
            "recover (ms)");
  for (const SweepRow& row : rows)
    table.add(row.label, format_double(100 * row.fault_intensity, 0) + "%",
              format_double(row.extra.at("chaos.q1_miss_fraction"), 4),
              format_double(row.extra.at("chaos.demotion_rate"), 4),
              format_double(row.extra.at("chaos.time_to_recover_us") / 1e3,
                            1));
  std::printf("%s\n", table.to_string().c_str());
}

void sweep_length(SweepRunner& runner, const Trace& trace, double cmin) {
  std::printf(
      "-- Sweep 2: 30%% brownout length, static vs degraded admission --\n");
  constexpr Time kLengths[] = {2 * kUsPerSec, 5 * kUsPerSec, 10 * kUsPerSec,
                               20 * kUsPerSec};
  std::vector<SweepCell> cells;
  for (Time length : kLengths) {
    FaultySchedule faults;
    faults.brownout(5 * kUsPerSec, 5 * kUsPerSec + length, 0.30);
    cells.push_back(make_cell(trace, kCellSpecs[4], cmin, faults, 0.30));
    cells.push_back(make_cell(trace, kCellSpecs[5], cmin, faults, 0.30));
  }
  const std::vector<SweepRow> rows = runner.run_cells(cells);

  AsciiTable table;
  table.add("length (s)", "static Q1 miss", "degraded Q1 miss",
            "degraded demotion rate");
  for (std::size_t i = 0; i < std::size(kLengths); ++i) {
    const SweepRow& s = rows[2 * i];
    const SweepRow& d = rows[2 * i + 1];
    table.add(format_double(to_sec(kLengths[i]), 0),
              format_double(s.extra.at("chaos.q1_miss_fraction"), 4),
              format_double(d.extra.at("chaos.q1_miss_fraction"), 4),
              format_double(d.extra.at("chaos.demotion_rate"), 4));
  }
  std::printf("%s", table.to_string().c_str());
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  std::printf("Chaos harness: graceful degradation under capacity faults\n");
  const Trace trace = generate_poisson(800, 40 * kUsPerSec, kSeed);

  auto cache = options.make_cache();
  SweepRunner runner(options.sweep_options(cache.get()));
  const Digest digest = cache ? hash_trace(trace) : Digest{};
  const double cmin =
      min_capacity_cached(trace, kFraction, kDelta, cache.get(),
                          cache ? &digest : nullptr)
          .cmin_iops;
  std::printf("trace: %zu requests, Cmin(%.0f%%, %.0f ms) = %.0f IOPS\n\n",
              trace.size(), 100 * kFraction, to_ms(kDelta), cmin);
  sweep_intensity(runner, trace, cmin);
  sweep_length(runner, trace, cmin);

  write_bench_json(options, runner, runner.stats().cells,
                   bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  run(parse_bench_args(argc, argv, "chaos_faults"));
  return 0;
}
