// Response-time distribution analysis for simulation results.
//
// Produces the quantities the paper's figures report: the fraction of
// requests within a bound (CDF points, Figures 4-5), the bucketed histogram
// <=50 / <=100 / <=500 / <=1000 / >1000 ms (Figure 6), percentiles, and
// per-class summaries (Figure 6(c)).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/completion.h"
#include "util/time.h"

namespace qos {

class ResponseStats {
 public:
  ResponseStats() = default;

  /// Collect response times from completions, optionally restricted to one
  /// service class.
  explicit ResponseStats(std::span<const CompletionRecord> completions,
                         std::optional<ServiceClass> klass = std::nullopt);

  std::size_t count() const { return sorted_us_.size(); }
  bool empty() const { return sorted_us_.empty(); }

  /// Fraction of requests with response time <= bound.
  double fraction_within(Time bound) const;

  /// p in [0, 1]; exact order statistic (nearest-rank).  Requires non-empty.
  Time percentile(double p) const;

  Time max() const;
  double mean_us() const;

  /// CDF evaluated at the given points (fractions within each bound).
  std::vector<double> cdf(std::span<const Time> bounds) const;

  /// The paper's Figure-6 buckets: fractions in (<=50, <=100, <=500,
  /// <=1000, >1000) ms.  Cumulative = false gives disjoint bucket masses.
  struct Buckets {
    double le_50 = 0, le_100 = 0, le_500 = 0, le_1000 = 0, gt_1000 = 0;
  };
  Buckets paper_buckets(bool cumulative = true) const;

  /// Sorted response times (us) — for plotting full CDFs.
  std::span<const Time> sorted() const { return sorted_us_; }

 private:
  std::vector<Time> sorted_us_;
};

/// Gnuplot-ready CDF dump: one "resp_ms fraction" line per bound, preceded
/// by a "# cdf <label>: resp_ms fraction" header.  Shared by the Figure 4/5
/// benches (and anything else plotting compliance curves).
std::string format_cdf(const ResponseStats& stats, const std::string& label,
                       std::span<const double> bounds_ms);

/// The log-spaced bounds (ms) the figure benches sample CDFs at.
inline constexpr double kCdfBoundsMs[] = {1.0,    2.0,    5.0,    10.0,
                                          20.0,   50.0,   100.0,  200.0,
                                          500.0,  1000.0, 2000.0, 5000.0,
                                          10000.0};

}  // namespace qos
