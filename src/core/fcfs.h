// FCFS baseline: no decomposition, one queue, one server (paper Section 3.2,
// "base case for the evaluation").  Bursts spill over and delay well-behaved
// requests — the behaviour the shaping framework eliminates.
#pragma once

#include <deque>

#include "sim/scheduler.h"
#include "util/check.h"

namespace qos {

class FcfsScheduler final : public Scheduler {
 public:
  int server_count() const override { return 1; }

  void on_arrival(const Request& r, Time) override { queue_.push_back(r); }

  std::optional<Dispatch> next_for(int server, Time) override {
    QOS_EXPECTS(server == 0);
    if (queue_.empty()) return std::nullopt;
    Dispatch d{queue_.front(), ServiceClass::kPrimary};
    queue_.pop_front();
    return d;
  }

 private:
  std::deque<Request> queue_;
};

}  // namespace qos
