// Lightweight contract checking (Expects/Ensures in the spirit of the GSL).
//
// QOS_EXPECTS / QOS_ENSURES guard pre/postconditions; QOS_CHECK guards
// internal invariants.  All three abort with a message on failure — invariant
// violations in a deterministic simulator are programming errors, not
// recoverable conditions, so we fail fast rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace qos::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace qos::detail

#define QOS_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::qos::detail::contract_failure("Precondition", #cond, __FILE__,     \
                                      __LINE__);                           \
  } while (0)

#define QOS_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::qos::detail::contract_failure("Postcondition", #cond, __FILE__,    \
                                      __LINE__);                           \
  } while (0)

#define QOS_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond))                                                           \
      ::qos::detail::contract_failure("Invariant", #cond, __FILE__,        \
                                      __LINE__);                           \
  } while (0)
