#include "core/multi_class.h"

#include <gtest/gtest.h>

#include "core/rtt.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

TEST(MultiClassDecompose, SingleTierMatchesRtt) {
  Trace t = generate_poisson(800, 20 * kUsPerSec, 211);
  const ClassSpec tiers[] = {{500, 10'000}};
  MultiClassDecomposition mc = multi_class_decompose(t, tiers);
  Decomposition d = rtt_decompose(t, 500, 10'000);
  EXPECT_EQ(mc.counts[0], d.admitted);
  EXPECT_EQ(mc.counts[1], d.dropped());
  for (const auto& r : t) {
    const bool primary = d.klass[r.seq] == ServiceClass::kPrimary;
    EXPECT_EQ(mc.tier[r.seq] == 0, primary) << "seq " << r.seq;
  }
}

TEST(MultiClassDecompose, CascadeFillsTiersInOrder) {
  // 10 simultaneous arrivals; tier 0 holds 2 (C=200, 10 ms), tier 1 holds 4
  // (C=200, 20 ms), rest best effort.
  Trace t = make_trace({0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  const ClassSpec tiers[] = {{200, 10'000}, {200, 20'000}};
  MultiClassDecomposition mc = multi_class_decompose(t, tiers);
  EXPECT_EQ(mc.counts[0], 2);
  EXPECT_EQ(mc.counts[1], 4);
  EXPECT_EQ(mc.counts[2], 4);
  // Earlier arrivals land in tighter tiers.
  EXPECT_EQ(mc.tier[0], 0);
  EXPECT_EQ(mc.tier[1], 0);
  EXPECT_EQ(mc.tier[2], 1);
  EXPECT_EQ(mc.tier[5], 1);
  EXPECT_EQ(mc.tier[6], 2);
}

TEST(MultiClassDecompose, FractionAccessors) {
  Trace t = make_trace({0, 0, 0, 0});
  const ClassSpec tiers[] = {{100, 10'000}};  // 1 slot
  MultiClassDecomposition mc = multi_class_decompose(t, tiers);
  EXPECT_DOUBLE_EQ(mc.fraction_in_tier(0), 0.25);
  EXPECT_DOUBLE_EQ(mc.fraction_in_tier(1), 0.75);
}

TEST(MultiClassDecompose, TiersMustHaveIncreasingDeltas) {
  Trace t = make_trace({0});
  const ClassSpec bad[] = {{100, 20'000}, {100, 10'000}};
  EXPECT_DEATH(multi_class_decompose(t, bad), "Precondition");
}

TEST(MultiClassScheduler, MatchesAnalyticCountsOnDedicatedishServer) {
  // With a fast server the live census matches the analytic cascade closely;
  // with 3 simultaneous bursts the counts must be identical because queue
  // occupancy is arrival-driven.
  Trace t = make_trace({0, 0, 0, 0, 0, 0});
  std::vector<ClassSpec> tiers = {{200, 10'000}, {100, 30'000}};
  MultiClassScheduler sched(tiers);
  ConstantRateServer server(300);
  SimResult r = simulate(t, sched, server);
  EXPECT_EQ(r.completions.size(), 6u);
  // Tier 0: 2 slots; tier 1: 3 slots; 1 best effort.
  EXPECT_EQ(sched.tier_of(0), 0);
  EXPECT_EQ(sched.tier_of(1), 0);
  EXPECT_EQ(sched.tier_of(2), 1);
  EXPECT_EQ(sched.tier_of(3), 1);
  EXPECT_EQ(sched.tier_of(4), 1);
  EXPECT_EQ(sched.tier_of(5), 2);
}

TEST(MultiClassScheduler, StrictPriorityOrder) {
  Trace t = make_trace({0, 0, 0, 0, 0, 0});
  std::vector<ClassSpec> tiers = {{200, 10'000}, {100, 30'000}};
  MultiClassScheduler sched(tiers);
  ConstantRateServer server(300);
  SimResult r = simulate(t, sched, server);
  // Completion order: tier 0 requests first, then tier 1, then best effort.
  std::vector<std::uint8_t> order;
  for (const auto& c : r.completions) order.push_back(sched.tier_of(c.seq));
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(order[i - 1], order[i]);
}

TEST(MultiClassScheduler, AllServedUnderRandomLoad) {
  Trace t = generate_poisson(900, 10 * kUsPerSec, 223);
  std::vector<ClassSpec> tiers = {{400, 10'000}, {200, 50'000}};
  MultiClassScheduler sched(tiers);
  ConstantRateServer server(700);
  SimResult r = simulate(t, sched, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(MultiClassScheduler, TightTierMeetsItsDeadline) {
  Trace t = generate_poisson(700, 20 * kUsPerSec, 227);
  std::vector<ClassSpec> tiers = {{400, 10'000}, {200, 50'000}};
  MultiClassScheduler sched(tiers);
  // Server at the sum of tier capacities: strict priority then guarantees
  // the tightest tier at least its planned rate.
  ConstantRateServer server(600);
  SimResult r = simulate(t, sched, server);
  for (const auto& c : r.completions) {
    if (sched.tier_of(c.seq) == 0) {
      EXPECT_LE(c.response_time(), 10'000) << "seq " << c.seq;
    }
  }
}

}  // namespace
}  // namespace qos
