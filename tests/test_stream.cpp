// Streaming ingest equivalence: every RequestStream source must yield byte-
// for-byte the request sequence its materialized counterpart produces, and a
// streamed simulation must be bit-identical to the materialized reference —
// same completions, same event stream, same content digest for the cache.
#include "stream/stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/fcfs.h"
#include "core/shaper.h"
#include "runner/hash.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "stream/gen_stream.h"
#include "stream/spc_stream.h"
#include "stream/stream_sim.h"
#include "trace/presets.h"
#include "trace/spc.h"

namespace qos {
namespace {

using stream::RequestStream;

// Drain a stream and also check the stream contract while at it.
std::vector<Request> drain(RequestStream& s) {
  std::vector<Request> out;
  while (auto r = s.next()) {
    EXPECT_TRUE(request_record_ok(*r));
    EXPECT_EQ(r->seq, out.size());
    if (!out.empty()) EXPECT_GE(r->arrival, out.back().arrival);
    out.push_back(*r);
  }
  EXPECT_FALSE(s.next().has_value()) << "nullopt must be sticky";
  return out;
}

void expect_same_sequence(const Trace& expected, RequestStream& s) {
  std::vector<Request> got = drain(s);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Request& a = expected[i];
    const Request& b = got[i];
    ASSERT_EQ(a.arrival, b.arrival) << "at " << i;
    ASSERT_EQ(a.seq, b.seq) << "at " << i;
    ASSERT_EQ(a.client, b.client) << "at " << i;
    ASSERT_EQ(a.lba, b.lba) << "at " << i;
    ASSERT_EQ(a.size_blocks, b.size_blocks) << "at " << i;
    ASSERT_EQ(a.is_write, b.is_write) << "at " << i;
  }
}

constexpr Time kShortRun = 60 * kUsPerSec;

TEST(StreamGen, EveryPresetMatchesMaterialized) {
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    Trace trace = preset_trace(w, kShortRun);
    auto s = stream::make_preset_stream(w, kShortRun);
    SCOPED_TRACE(workload_name(w));
    expect_same_sequence(trace, *s);
  }
}

TEST(StreamGen, WorkloadWithTransitionMatrixAndGiants) {
  WorkloadSpec spec;
  spec.states = {{200, 0.5}, {2'000, 0.2}, {0, 0.3}};
  spec.transition = {0.0, 0.7, 0.3,  //
                     0.5, 0.0, 0.5,  //
                     0.9, 0.1, 0.0};
  spec.batches = {.batches_per_sec = 2.0,
                  .mean_size = 12,
                  .spread_us = 3'000,
                  .giant_prob = 0.2,
                  .giant_factor = 6.0,
                  .max_size = 200};
  Trace trace = generate_workload(spec, kShortRun, 77);
  auto s = stream::make_workload_stream(spec, kShortRun, 77);
  expect_same_sequence(trace, *s);
}

TEST(StreamGen, PoissonMatchesMaterialized) {
  Trace trace = generate_poisson(800, kShortRun, 5);
  auto s = stream::make_poisson_stream(800, kShortRun, 5);
  expect_same_sequence(trace, *s);
}

TEST(StreamGen, ParetoOnOffMatchesMaterialized) {
  Trace trace = generate_pareto_onoff(1'000, 1.5, 0.05, 0.2, kShortRun, 11);
  auto s = stream::make_pareto_onoff_stream(1'000, 1.5, 0.05, 0.2, kShortRun,
                                            11);
  expect_same_sequence(trace, *s);
}

TEST(StreamGen, RegimeSwitchingMatchesMaterialized) {
  RegimeSchedule schedule;
  schedule.phase(0, 300)
      .phase(10 * kUsPerSec, 3'000,
             {.batches_per_sec = 5.0, .mean_size = 20, .spread_us = 1'000})
      .phase(25 * kUsPerSec, 0)
      .phase(40 * kUsPerSec, 900,
             {.batches_per_sec = 1.0, .mean_size = 6});
  Trace trace = generate_regime_switching(schedule, kShortRun, 123);
  auto s = stream::make_regime_stream(schedule, kShortRun, 123);
  expect_same_sequence(trace, *s);
}

TEST(StreamGen, BmodelFallbackMatchesMaterialized) {
  Trace trace = generate_bmodel(500, 0.75, 12, kShortRun, 9);
  auto s = stream::make_bmodel_stream(500, 0.75, 12, kShortRun, 9);
  expect_same_sequence(trace, *s);
}

TEST(StreamGen, DigestMatchesHashTraceForEveryPreset) {
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    Trace trace = preset_trace(w, kShortRun);
    auto s = stream::make_preset_stream(w, kShortRun);
    stream::DigestingStream digesting(*s);
    while (digesting.next()) {
    }
    SCOPED_TRACE(workload_name(w));
    EXPECT_EQ(digesting.count(), trace.size());
    EXPECT_EQ(digesting.finish(), hash_trace(trace));
  }
}

TEST(StreamGen, DigestDistinguishesPrefix) {
  // Count-at-the-end must still separate a stream from its proper prefix.
  Trace t2 = Trace(std::vector<Request>{Request{.arrival = 5}});
  Trace t0;
  EXPECT_NE(hash_trace(t2), hash_trace(t0));
}

TEST(StreamMerge, MatchesTraceMerge) {
  std::vector<Trace> parts;
  parts.push_back(preset_trace(Workload::kWebSearch, kShortRun));
  parts.push_back(preset_trace(Workload::kFinTrans, kShortRun));
  parts.push_back(generate_poisson(200, kShortRun, 3));
  Trace merged = Trace::merge(parts);

  std::vector<std::unique_ptr<RequestStream>> sources;
  sources.push_back(stream::make_preset_stream(Workload::kWebSearch,
                                               kShortRun));
  sources.push_back(stream::make_preset_stream(Workload::kFinTrans,
                                               kShortRun));
  sources.push_back(stream::make_poisson_stream(200, kShortRun, 3));
  stream::MergedStream s(std::move(sources));
  expect_same_sequence(merged, s);
}

TEST(StreamSim, CompletionsEventsAndDigestMatchMaterialized) {
  Trace trace = preset_trace(Workload::kFinTrans, kShortRun);
  ShapingConfig config;  // Miser, the default policy
  const double cmin = 600;
  const double total = cmin + config.resolved_headroom_iops();

  RecordingSink mat_sink;
  auto mat_sched = make_scheduler(config, cmin);
  ConstantRateServer mat_server(total);
  SimResult mat = simulate(trace, *mat_sched, mat_server, &mat_sink);

  RecordingSink str_sink;
  auto str_sched = make_scheduler(config, cmin);
  ConstantRateServer str_server(total);
  auto s = stream::make_preset_stream(Workload::kFinTrans, kShortRun);
  stream::DigestingStream digesting(*s);
  SimResult got = stream::collect_stream(digesting, *str_sched, str_server,
                                         &str_sink);

  ASSERT_EQ(got.completions.size(), mat.completions.size());
  for (std::size_t i = 0; i < got.completions.size(); ++i)
    ASSERT_EQ(got.completions[i], mat.completions[i]) << "at " << i;
  ASSERT_EQ(str_sink.events().size(), mat_sink.events().size());
  for (std::size_t i = 0; i < str_sink.events().size(); ++i)
    ASSERT_EQ(str_sink.events()[i], mat_sink.events()[i]) << "at " << i;
  EXPECT_EQ(digesting.finish(), hash_trace(trace));
}

TEST(StreamSim, StatsCountEngineEvents) {
  auto s = stream::make_poisson_stream(500, kShortRun, 21);
  FcfsScheduler fcfs;
  ConstantRateServer server(2'000);
  Server* servers[] = {&server};
  std::uint64_t seen = 0;
  auto stats = stream::simulate_stream(
      *s, fcfs, servers, nullptr,
      [&seen](const CompletionRecord&) { ++seen; });
  EXPECT_EQ(stats.completions, seen);
  EXPECT_EQ(stats.requests, stats.completions);  // FCFS never fans out
  EXPECT_EQ(stats.events(), stats.requests + stats.dispatches +
                                stats.completions);
  EXPECT_GT(stats.makespan, 0);
}

// ---- SPC streaming ----

class StreamSpcFile : public ::testing::Test {
 protected:
  void write_fixture(const std::string& text) {
    // Unique per test: ctest runs each test as its own process, in parallel.
    path_ = ::testing::TempDir() + "stream_spc_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".txt";
    std::ofstream out(path_, std::ios::binary);
    out << text;
  }

  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
};

// In-order body with malformed lines, blank lines, tie timestamps and a
// mildly out-of-order tail — everything the materialized parser tolerates.
const char kFixture[] =
    "0,1234,4096,r,0.000000\n"
    "\n"
    "garbage line\n"
    "1,5678,8192,W,0.125000\n"
    "2,100,1024,w,0.125000\n"
    "0,1,512,x,1.0\n"
    "3,200,512,r,0.500000\n"
    "1,300,2048,R,0.400000\n"   // out of order by 100 ms
    "2,400,512,w,0.600000\n";

TEST_F(StreamSpcFile, ChunkedMatchesMaterialized) {
  write_fixture(kFixture);
  std::size_t mat_skipped = 0;
  auto trace = try_load_spc_file(path_, &mat_skipped);
  ASSERT_TRUE(trace.has_value());

  // A 7-byte chunk forces every line across a refill boundary.
  for (std::size_t chunk : {std::size_t{7}, std::size_t{1} << 20}) {
    stream::SpcStreamOptions options;
    options.chunk_bytes = chunk;
    auto s = stream::try_open_spc_stream(path_, options);
    ASSERT_NE(s, nullptr);
    SCOPED_TRACE(chunk);
    expect_same_sequence(*trace, *s);
    EXPECT_EQ(s->skipped_lines(), mat_skipped);
  }
}

TEST_F(StreamSpcFile, MmapMatchesMaterialized) {
  write_fixture(kFixture);
  auto trace = try_load_spc_file(path_);
  ASSERT_TRUE(trace.has_value());
  stream::SpcStreamOptions options;
  options.use_mmap = true;
  auto s = stream::try_open_spc_stream(path_, options);
  ASSERT_NE(s, nullptr);
  expect_same_sequence(*trace, *s);
}

TEST_F(StreamSpcFile, NoTrailingNewline) {
  write_fixture("0,1,512,r,0.5\n0,2,512,w,1.5");
  auto trace = try_load_spc_file(path_);
  auto s = stream::try_open_spc_stream(path_);
  ASSERT_NE(s, nullptr);
  expect_same_sequence(*trace, *s);
}

TEST_F(StreamSpcFile, EmptyFile) {
  write_fixture("");
  for (bool mmap : {false, true}) {
    stream::SpcStreamOptions options;
    options.use_mmap = mmap;
    auto s = stream::try_open_spc_stream(path_, options);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(s->next().has_value());
    EXPECT_EQ(s->skipped_lines(), 0u);
  }
}

TEST_F(StreamSpcFile, MissingFileReturnsNull) {
  EXPECT_EQ(stream::try_open_spc_stream("/nonexistent/definitely/not.spc"),
            nullptr);
  stream::SpcStreamOptions options;
  options.use_mmap = true;
  EXPECT_EQ(
      stream::try_open_spc_stream("/nonexistent/definitely/not.spc", options),
      nullptr);
}

TEST_F(StreamSpcFile, DisorderBeyondWindowFailsLoudly) {
  // 2 s of disorder against a 1 s window: the early record is released
  // before the late one surfaces — the stream must abort, not mis-sort.
  write_fixture(
      "0,1,512,r,5.0\n"
      "0,2,512,r,9.0\n"
      "0,3,512,r,3.0\n");
  auto s = stream::try_open_spc_stream(path_);
  ASSERT_NE(s, nullptr);
  EXPECT_DEATH(
      {
        while (s->next()) {
        }
      },
      "Invariant");
}

TEST_F(StreamSpcFile, StreamedSimulationMatchesMaterialized) {
  write_fixture(kFixture);
  auto trace = try_load_spc_file(path_);
  ASSERT_TRUE(trace.has_value());

  FcfsScheduler mat_sched;
  ConstantRateServer mat_server(100);
  SimResult mat = simulate(*trace, mat_sched, mat_server);

  auto s = stream::try_open_spc_stream(path_);
  ASSERT_NE(s, nullptr);
  FcfsScheduler str_sched;
  ConstantRateServer str_server(100);
  SimResult got = stream::collect_stream(*s, str_sched, str_server);
  ASSERT_EQ(got.completions.size(), mat.completions.size());
  for (std::size_t i = 0; i < got.completions.size(); ++i)
    ASSERT_EQ(got.completions[i], mat.completions[i]) << "at " << i;
}

}  // namespace
}  // namespace qos
