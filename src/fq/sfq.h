// Start-time Fair Queueing (SFQ).
//
// Each item gets a start tag S = max(v, F_prev) and finish tag
// F = S + cost/weight, where v is the system virtual time — the start tag of
// the item most recently dispatched.  Dispatch order is by smallest head
// start tag (flow index breaks ties).  SFQ provides proportional sharing
// with bounded unfairness and is the simplest member of the family the paper
// cites for the FairQueue recombination.
//
// Hot path: per-flow FIFOs are pooled ring buffers and the backlogged flows
// sit in an indexed min-heap keyed by (head start tag, flow index), so
// dequeue is O(log flows) instead of a scan — with the heap's lowest-index
// tie-break reproducing the scan's dispatch order exactly
// (tests/test_fq_differential.cpp holds it to the frozen scan reference).
#pragma once

#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class SfqScheduler final : public FairScheduler {
 public:
  explicit SfqScheduler(std::vector<double> weights);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  IndexedMinHeap<double> head_start_;  ///< backlogged flows by head start tag
  double v_ = 0;
};

}  // namespace qos
