file(REMOVE_RECURSE
  "CMakeFiles/test_miser.dir/test_miser.cpp.o"
  "CMakeFiles/test_miser.dir/test_miser.cpp.o.d"
  "test_miser"
  "test_miser.pdb"
  "test_miser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
