#include "stream/stream_sim.h"

namespace qos::stream {

SimResult collect_stream(RequestStream& requests, Scheduler& scheduler,
                         std::span<Server* const> servers, EventSink* sink) {
  SimResult result;
  simulate_stream(requests, scheduler, servers, sink,
                  [&result](const CompletionRecord& record) {
                    result.completions.push_back(record);
                  });
  return result;
}

SimResult collect_stream(RequestStream& requests, Scheduler& scheduler,
                         Server& server, EventSink* sink) {
  Server* servers[] = {&server};
  return collect_stream(requests, scheduler, servers, sink);
}

}  // namespace qos::stream
