// Offload recombination — Split generalized to a pool of overflow servers.
//
// Paper Section 2.1: "one simple approach is to offload the overflowing
// requests to a separate physical server ... similar in principle to the
// write offloading strategy in [Everest, OSDI'08] where bursts of write
// requests are distributed to a number of low-utilization disks".  This
// scheduler keeps Q1 on the primary server and spreads Q2 across k offload
// servers.  Routing policies:
//   * round-robin — the Everest default for equal offload targets;
//   * least-loaded — route to the server with the fewest queued overflows
//     (join-shortest-queue), better when offload capacity is uneven.
// With k = 1 this degenerates to the paper's Split.
#pragma once

#include <deque>
#include <vector>

#include "core/rtt.h"
#include "sim/scheduler.h"

namespace qos {

enum class OffloadRouting { kRoundRobin, kLeastLoaded };

class OffloadScheduler final : public Scheduler {
 public:
  /// Server 0 is the primary; servers 1..k are the offload pool.
  OffloadScheduler(double admission_capacity_iops, Time delta,
                   int offload_servers,
                   OffloadRouting routing = OffloadRouting::kRoundRobin)
      : admission_(admission_capacity_iops, delta),
        routing_(routing),
        overflow_(static_cast<std::size_t>(offload_servers)) {
    QOS_EXPECTS(offload_servers >= 1);
  }

  int server_count() const override {
    return 1 + static_cast<int>(overflow_.size());
  }

  void on_arrival(const Request& r, Time) override {
    if (admission_.admit(len_q1_)) {
      ++len_q1_;
      q1_.push_back(r);
      return;
    }
    overflow_[pick_target()].push_back(r);
  }

  std::optional<Dispatch> next_for(int server, Time) override {
    QOS_EXPECTS(server >= 0 && server < server_count());
    if (server == 0) {
      if (q1_.empty()) return std::nullopt;
      Dispatch d{q1_.front(), ServiceClass::kPrimary};
      q1_.pop_front();
      return d;
    }
    auto& queue = overflow_[static_cast<std::size_t>(server - 1)];
    if (queue.empty()) return std::nullopt;
    Dispatch d{queue.front(), ServiceClass::kOverflow};
    queue.pop_front();
    return d;
  }

  void on_complete(const Request&, ServiceClass klass, int, Time) override {
    if (klass == ServiceClass::kPrimary) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
    }
  }

  std::int64_t len_q1() const { return len_q1_; }
  std::size_t overflow_queued(std::size_t target) const {
    QOS_EXPECTS(target < overflow_.size());
    return overflow_[target].size();
  }

 private:
  std::size_t pick_target() {
    if (routing_ == OffloadRouting::kRoundRobin) {
      const std::size_t t = next_target_;
      next_target_ = (next_target_ + 1) % overflow_.size();
      return t;
    }
    // Least loaded; ties to the lowest index for determinism.
    std::size_t best = 0;
    for (std::size_t i = 1; i < overflow_.size(); ++i)
      if (overflow_[i].size() < overflow_[best].size()) best = i;
    return best;
  }

  RttAdmission admission_;
  OffloadRouting routing_;
  std::deque<Request> q1_;
  std::vector<std::deque<Request>> overflow_;
  std::int64_t len_q1_ = 0;
  std::size_t next_target_ = 0;
};

}  // namespace qos
