# Empty compiler generated dependencies file for bq_core.
# This may be replaced when dependencies are built.
