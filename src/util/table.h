// Minimal ASCII table formatter used by the bench harnesses to print
// paper-style tables (e.g. Table 1) and figure series headers.
#pragma once

#include <string>
#include <vector>

namespace qos {

/// Builds a left-padded ASCII table.  Rows may have differing column counts;
/// each column is sized to its widest cell.
class AsciiTable {
 public:
  void add_row(std::vector<std::string> cells);

  /// Convenience: build a row from heterogeneous printable values.
  template <typename... Ts>
  void add(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  /// Render with two spaces between columns.
  std::string to_string() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(long v) { return std::to_string(v); }
  static std::string to_cell(long long v) { return std::to_string(v); }
  static std::string to_cell(unsigned v) { return std::to_string(v); }
  static std::string to_cell(unsigned long v) { return std::to_string(v); }
  static std::string to_cell(unsigned long long v) { return std::to_string(v); }

  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` places after the decimal point.
std::string format_double(double v, int digits);

}  // namespace qos
