// Resumable event core — the simulate() loop as a feedable object.
//
// SimEngine holds exactly the state the one-shot simulate() loop kept on its
// stack: the busy-server completion min-heap, the sorted idle free list, the
// per-slot in-flight records and the VirtualClock.  Arrivals are *pushed*
// (in non-decreasing order) instead of being read from a materialized Trace,
// and the event loop is cut at an arbitrary virtual-time limit:
// advance_until(T) retires every event strictly before T and then returns,
// leaving the engine resumable from T.
//
// That one generalization serves three drivers with a single event order:
//   * simulate(Trace, ...)            — push each request, drain to the end;
//   * stream::simulate_stream(...)    — pull from a RequestStream, pushing
//     each request after retiring everything before its arrival, so only the
//     same-instant arrival batch is ever buffered;
//   * stream::simulate_sharded(...)   — one engine per tenant lane advancing
//     under a conservative virtual-time barrier (lookahead = δ), where
//     advance_until(W + δ) is the barrier step.
// Because all three call the identical member functions in the identical
// order, streamed and sharded runs are bit-identical to the materialized
// single-threaded reference by construction (tests/test_stream.cpp,
// tests/test_sharded_sim.cpp).
//
// Event order contract (unchanged from the original loop): events are
// ordered by time; at one instant, completions retire first (in server-index
// order — the heap's (finish, server) tie-break), then every arrival at that
// instant is delivered, then dispatch offers run to a fixed point over the
// sorted idle list.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "obs/sink.h"
#include "sim/completion.h"
#include "sim/scheduler.h"
#include "sim/server.h"
#include "trace/request.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class SimEngine {
 public:
  /// `servers[i]` backs scheduler server index i; sizes must match.  When
  /// `sink` is non-null the engine emits kArrival / kDispatch / kCompletion
  /// events and forwards the sink to every server (Server::
  /// attach_observability), exactly as simulate() documents.  The scheduler
  /// and servers are borrowed and must outlive the engine.
  SimEngine(Scheduler& scheduler, std::span<Server* const> servers,
            EventSink* sink = nullptr)
      : scheduler_(scheduler),
        servers_(servers.begin(), servers.end()),
        probe_(sink),
        slot_(servers.size()),
        pending_(static_cast<int>(servers.size())),
        idle_(servers.size()) {
    QOS_EXPECTS(static_cast<int>(servers.size()) == scheduler.server_count());
    QOS_EXPECTS(!servers.empty());
    if (sink != nullptr)
      for (Server* s : servers_) s->attach_observability(sink);
    for (std::size_t s = 0; s < servers_.size(); ++s)
      idle_[s] = static_cast<int>(s);
  }

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Buffer an arrival.  Arrivals must be pushed in non-decreasing order and
  /// never before the engine's current instant — an arrival the clock has
  /// already passed would be time travel.
  void push_arrival(const Request& r) {
    QOS_EXPECTS(r.arrival >= clock_.now());
    QOS_EXPECTS(arrivals_.empty() || r.arrival >= arrivals_.back().arrival);
    arrivals_.push_back(r);
  }

  /// Instant of the next event (buffered arrival or in-flight completion);
  /// kTimeMax when the engine is fully drained.
  Time next_event_time() const {
    const Time completion = pending_.empty() ? kTimeMax : pending_.top_key();
    const Time arrival = arrivals_.empty() ? kTimeMax
                                           : arrivals_.front().arrival;
    return std::min(completion, arrival);
  }

  /// True when no buffered arrival and no in-flight service remains.
  bool drained() const { return next_event_time() == kTimeMax; }

  /// Retire every event with instant strictly before `limit`, passing each
  /// CompletionRecord to `out` in retire order (finish order; equal-finish
  /// ties in server-index order).  Resumable: a later call with a larger
  /// limit continues exactly where this one stopped.  advance_until(kTimeMax)
  /// drains the engine (no event ever occurs at kTimeMax itself).
  template <typename Out>
  void advance_until(Time limit, Out&& out) {
    while (true) {
      const Time next_event = next_event_time();
      if (next_event >= limit) return;
      clock_.advance_to(next_event);
      const Time now = clock_.now();

      // Completions first (see scheduler.h contract); the heap's
      // (finish, server) order yields equal-time pops in server-index order.
      while (!pending_.empty() && pending_.top_key() == now) {
        const int s = pending_.pop();
        const CompletionRecord& record = slot_[static_cast<std::size_t>(s)];
        ++completions_;
        out(record);
        idle_.insert(std::lower_bound(idle_.begin(), idle_.end(), s), s);
        if (probe_) {
          probe_.emit({.time = now,
                       .seq = record.seq,
                       .a = record.response_time(),
                       .client = record.client,
                       .kind = EventKind::kCompletion,
                       .klass = record.klass,
                       .server = static_cast<std::uint8_t>(s)});
        }
        scheduler_.on_complete(Request{.arrival = record.arrival,
                                       .seq = record.seq,
                                       .client = record.client},
                               record.klass, s, now);
      }

      // Then all arrivals at `now`.
      while (!arrivals_.empty() && arrivals_.front().arrival == now) {
        const Request& r = arrivals_.front();
        ++arrivals_delivered_;
        if (probe_) {
          probe_.emit({.time = now,
                       .seq = r.seq,
                       .client = r.client,
                       .kind = EventKind::kArrival});
        }
        scheduler_.on_arrival(r, now);
        arrivals_.pop_front();
      }

      fill_servers(now);
    }
  }

  // ---- counters (events processed so far) ----
  std::uint64_t arrivals_delivered() const { return arrivals_delivered_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t completions() const { return completions_; }
  /// Total simulator events: arrivals + dispatches + completions.
  std::uint64_t events() const {
    return arrivals_delivered_ + dispatches_ + completions_;
  }

 private:
  // Offer work to every idle server until no server accepts.  A dispatch on
  // one server can change scheduler state (e.g. Miser slack), so loop to a
  // fixed point.  Visiting only the idle list (kept sorted ascending)
  // preserves the original full-scan call order on the scheduler exactly.
  void fill_servers(Time now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t k = 0; k < idle_.size();) {
        const int s = idle_[k];
        auto d = scheduler_.next_for(s, now);
        if (!d) {
          ++k;
          continue;
        }
        const Time dur = servers_[static_cast<std::size_t>(s)]
                             ->service_duration(d->request, now);
        QOS_CHECK(dur > 0);
        slot_[static_cast<std::size_t>(s)] = CompletionRecord{
            .seq = d->request.seq,
            .client = d->request.client,
            .arrival = d->request.arrival,
            .start = now,
            .finish = now + dur,
            .klass = d->klass,
            .server = static_cast<std::uint8_t>(s),
        };
        pending_.push(s, now + dur);
        ++dispatches_;
        idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(k));
        if (probe_) {
          probe_.emit({.time = now,
                       .seq = d->request.seq,
                       .a = now - d->request.arrival,
                       .client = d->request.client,
                       .kind = EventKind::kDispatch,
                       .klass = d->klass,
                       .server = static_cast<std::uint8_t>(s)});
        }
        progress = true;
      }
    }
  }

  Scheduler& scheduler_;
  std::vector<Server*> servers_;
  Probe probe_;

  RingBuffer<Request> arrivals_;         ///< buffered, non-decreasing
  std::vector<CompletionRecord> slot_;   ///< in-flight record per server
  IndexedMinHeap<Time> pending_;         ///< busy servers keyed by finish
  std::vector<int> idle_;                ///< idle servers, ascending
  VirtualClock clock_;

  std::uint64_t arrivals_delivered_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t completions_ = 0;
};

}  // namespace qos
