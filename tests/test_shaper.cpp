#include "core/shaper.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "trace/generator.h"

namespace qos {
namespace {

Trace bursty_trace(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.states = {{150, 2.0}, {900, 0.4}};
  spec.batches = {.batches_per_sec = 0.1,
                  .mean_size = 10,
                  .spread_us = 2'000,
                  .giant_prob = 0,
                  .giant_factor = 1};
  return generate_workload(spec, 60 * kUsPerSec, seed);
}

TEST(PolicyName, AllNamed) {
  EXPECT_STREQ(policy_name(Policy::kFcfs), "FCFS");
  EXPECT_STREQ(policy_name(Policy::kSplit), "Split");
  EXPECT_STREQ(policy_name(Policy::kFairQueue), "FairQueue");
  EXPECT_STREQ(policy_name(Policy::kMiser), "Miser");
}

class ShaperPolicyTest : public ::testing::TestWithParam<Policy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, ShaperPolicyTest,
                         ::testing::Values(Policy::kFcfs, Policy::kSplit,
                                           Policy::kFairQueue, Policy::kMiser),
                         [](const auto& info) {
                           return policy_name(info.param);
                         });

TEST_P(ShaperPolicyTest, CompletesEveryRequest) {
  Trace t = bursty_trace(111);
  ShapingConfig config;
  config.policy = GetParam();
  config.fraction = 0.9;
  config.delta = from_ms(20);
  ShapingOutcome out = shape_and_run(t, config);
  EXPECT_EQ(out.sim.completions.size(), t.size());
  EXPECT_GT(out.cmin_iops, 0);
  EXPECT_DOUBLE_EQ(out.headroom_iops, 50.0);  // 1 / 20 ms
}

TEST_P(ShaperPolicyTest, CapacityOverrideRespected) {
  Trace t = bursty_trace(113);
  ShapingConfig config;
  config.policy = GetParam();
  config.capacity_override_iops = 700;
  config.headroom_override_iops = 30;
  ShapingOutcome out = shape_and_run(t, config);
  EXPECT_DOUBLE_EQ(out.cmin_iops, 700);
  EXPECT_DOUBLE_EQ(out.headroom_iops, 30);
  EXPECT_DOUBLE_EQ(out.total_iops(), 730);
}

TEST(Shaper, DecomposedPoliciesBeatFcfsAtDeadline) {
  // The paper's headline comparison at equal total capacity.
  Trace t = bursty_trace(127);
  ShapingConfig config;
  config.fraction = 0.9;
  config.delta = from_ms(10);

  config.policy = Policy::kFcfs;
  ResponseStats fcfs(shape_and_run(t, config).sim.completions);

  for (Policy p : {Policy::kSplit, Policy::kFairQueue, Policy::kMiser}) {
    config.policy = p;
    ResponseStats shaped(shape_and_run(t, config).sim.completions);
    EXPECT_GT(shaped.fraction_within(config.delta),
              fcfs.fraction_within(config.delta))
        << policy_name(p);
  }
}

TEST(Shaper, ShapedMeetsTargetFraction) {
  Trace t = bursty_trace(131);
  ShapingConfig config;
  config.fraction = 0.9;
  config.delta = from_ms(10);
  for (Policy p : {Policy::kSplit, Policy::kFairQueue, Policy::kMiser}) {
    config.policy = p;
    ShapingOutcome out = shape_and_run(t, config);
    ResponseStats all(out.sim.completions);
    // Primary admissions guarantee ~f of all requests; Miser may shave a
    // hair off (paper Section 3.2) — allow 1% slop.
    EXPECT_GT(all.fraction_within(config.delta), config.fraction - 0.01)
        << policy_name(p);
  }
}

TEST(Shaper, MakeSchedulerProducesDistinctTypes) {
  ShapingConfig config;
  config.delta = from_ms(10);
  config.headroom_override_iops = 20;
  config.policy = Policy::kFcfs;
  auto fcfs = make_scheduler(config, 100);
  config.policy = Policy::kSplit;
  auto split = make_scheduler(config, 100);
  EXPECT_EQ(fcfs->server_count(), 1);
  EXPECT_EQ(split->server_count(), 2);
}

TEST(Shaper, MakeSchedulerWithExplicitHeadroom) {
  // The config form covers what the retired positional signature did:
  // policy, capacity, deadline and an explicit headroom override.
  ShapingConfig config;
  config.policy = Policy::kSplit;
  config.delta = from_ms(10);
  config.headroom_override_iops = 20;
  auto split = make_scheduler(config, 100);
  EXPECT_EQ(split->server_count(), 2);
  EXPECT_DOUBLE_EQ(config.resolved_headroom_iops(), 20.0);
}

TEST(Shaper, ObservedRunBuildsReportAndReconciles) {
  Trace t = bursty_trace(137);
  MetricRegistry registry;
  RecordingSink sink;
  ShapingConfig config;
  config.fraction = 0.9;
  config.delta = from_ms(10);
  config.policy = Policy::kMiser;
  config.registry = &registry;
  config.sink = &sink;
  ShapingOutcome out = shape_and_run(t, config);

  // Report totals match the simulation.
  EXPECT_EQ(out.report.all.count, out.sim.completions.size());
  EXPECT_EQ(out.report.admitted + out.report.rejected,
            out.sim.completions.size());
  EXPECT_EQ(out.report.primary.count + out.report.overflow.count,
            out.report.all.count);
  EXPECT_TRUE(out.report.q1_occupancy.tracked);

  // Sink events reconcile with the registry and the completions.
  EXPECT_EQ(sink.count(EventKind::kAdmit),
            registry.counter("rtt.admitted").value());
  EXPECT_EQ(sink.count(EventKind::kReject),
            registry.counter("rtt.rejected").value());
  EXPECT_EQ(sink.count(EventKind::kArrival), t.size());
  EXPECT_EQ(sink.count(EventKind::kCompletion), out.sim.completions.size());
  EXPECT_EQ(sink.count(EventKind::kDispatch), out.sim.completions.size());
}

TEST(Shaper, UnobservedRunSkipsReport) {
  Trace t = bursty_trace(139);
  ShapingConfig config;
  config.fraction = 0.9;
  config.delta = from_ms(10);
  ShapingOutcome out = shape_and_run(t, config);
  EXPECT_EQ(out.report.all.count, 0u);  // not built without registry/sink
  // But one can always be derived after the fact.
  ShapingReport report = build_shaping_report(out.sim, config.delta);
  EXPECT_EQ(report.all.count, out.sim.completions.size());
}

}  // namespace
}  // namespace qos
