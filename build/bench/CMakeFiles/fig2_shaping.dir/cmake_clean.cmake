file(REMOVE_RECURSE
  "CMakeFiles/fig2_shaping.dir/fig2_shaping.cpp.o"
  "CMakeFiles/fig2_shaping.dir/fig2_shaping.cpp.o.d"
  "fig2_shaping"
  "fig2_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
