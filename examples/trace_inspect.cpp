// Trace inspector: characterize a workload and price its QoS options.
//
//   $ ./trace_inspect [trace.spc]
//
// With a path, loads an SPC-format trace (UMass repository format); without
// one, uses the OpenMail preset.  Prints the burstiness profile, the
// windowed rate summary, and the capacity-QoS knee for three deadlines —
// everything an operator needs before choosing a graduated SLA.
#include <cstdio>

#include "analysis/burstiness.h"
#include "core/capacity.h"
#include "trace/presets.h"
#include "trace/rate_series.h"
#include "trace/spc.h"
#include "util/table.h"

using namespace qos;

int main(int argc, char** argv) {
  Trace trace;
  if (argc > 1) {
    std::printf("loading SPC trace %s\n", argv[1]);
    std::size_t skipped = 0;
    auto loaded = try_load_spc_file(argv[1], &skipped);
    if (!loaded) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    if (skipped > 0)
      std::printf("skipped %zu malformed line(s)\n", skipped);
    trace = *std::move(loaded);
  } else {
    std::printf("no trace given; using the OpenMail preset (pass an SPC "
                "file to inspect your own)\n");
    trace = preset_trace(Workload::kOpenMail, 900 * kUsPerSec);
  }
  if (trace.empty()) {
    std::printf("trace is empty\n");
    return 1;
  }

  std::printf("\n%zu requests over %.1f s\n", trace.size(),
              to_sec(trace.duration()));

  const BurstinessProfile p = characterize(trace);
  AsciiTable profile;
  profile.add("metric", "value");
  profile.add("mean rate (IOPS)", format_double(p.mean_iops, 1));
  profile.add("peak/mean @100ms", format_double(p.peak_to_mean_100ms, 2));
  profile.add("peak/mean @1s", format_double(p.peak_to_mean_1s, 2));
  profile.add("IDC @100ms", format_double(p.idc_100ms, 2));
  profile.add("IDC @1s", format_double(p.idc_1s, 2));
  profile.add("count acf(1) @1s", format_double(p.autocorr_lag1_1s, 2));
  profile.add("Hurst (agg. var.)", format_double(p.hurst_av, 2));
  profile.add("Hurst (R/S)", format_double(p.hurst_rs, 2));
  std::printf("\nburstiness profile:\n%s", profile.to_string().c_str());

  std::printf("\ncapacity-QoS knee (Cmin in IOPS):\n");
  AsciiTable knee;
  knee.add("delta", "90%", "95%", "99%", "99.9%", "100%", "knee 100/90");
  for (Time delta : {from_ms(5), from_ms(10), from_ms(50)}) {
    auto curve =
        capacity_profile(trace, delta, {0.90, 0.95, 0.99, 0.999, 1.0});
    std::vector<std::string> row{format_double(to_ms(delta), 0) + " ms"};
    for (const auto& point : curve)
      row.push_back(format_double(point.cmin_iops, 0));
    row.push_back(
        format_double(curve.back().cmin_iops / curve.front().cmin_iops, 1) +
        "x");
    knee.add_row(std::move(row));
  }
  std::printf("%s", knee.to_string().c_str());
  std::printf(
      "\nreading the knee: a ratio well above 1 means worst-case\n"
      "provisioning is paying for a tiny tail — a graduated SLA (see\n"
      "./graduated_sla) recovers that capacity.\n");
  return 0;
}
