# Empty dependencies file for bq_curves.
# This may be replaced when dependencies are built.
