file(REMOVE_RECURSE
  "CMakeFiles/fig8_diff_multiplex.dir/fig8_diff_multiplex.cpp.o"
  "CMakeFiles/fig8_diff_multiplex.dir/fig8_diff_multiplex.cpp.o.d"
  "fig8_diff_multiplex"
  "fig8_diff_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_diff_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
