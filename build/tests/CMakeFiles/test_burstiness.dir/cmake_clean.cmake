file(REMOVE_RECURSE
  "CMakeFiles/test_burstiness.dir/test_burstiness.cpp.o"
  "CMakeFiles/test_burstiness.dir/test_burstiness.cpp.o.d"
  "test_burstiness"
  "test_burstiness.pdb"
  "test_burstiness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
