#include "obs/trace_stream.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "obs/trace_codec.h"
#include "util/check.h"

namespace qos {

namespace {

using trace_codec::get_fault;
using trace_codec::get_slack;
using trace_codec::get_span;
using trace_codec::put_fault;
using trace_codec::put_i64;
using trace_codec::put_slack;
using trace_codec::put_span;
using trace_codec::put_str;
using trace_codec::put_u64;
using trace_codec::Reader;

constexpr char kMagic[] = "QOSTRC02";  // 8 chars + NUL
constexpr std::size_t kMagicLen = 8;

constexpr char kChunkMeta = 'M';
constexpr char kChunkSpans = 'S';
constexpr char kChunkFaults = 'F';
constexpr char kChunkSlack = 'K';
constexpr char kChunkFooter = 'E';

/// Upper bound on a single chunk payload: far above anything the writer
/// frames (records_per_chunk * ~100 B), low enough that a corrupt length
/// field cannot OOM the reader.
constexpr std::uint64_t kMaxChunkPayload = std::uint64_t{1} << 30;

/// Word-wise FNV-1a variant over the chunk payload — part of the QOSTRC02
/// format.  Folding 8 bytes per multiply (plus a padded tail word carrying
/// the residue length) is ~8x cheaper than byte-wise FNV, which matters
/// because the writer sits on the giant-run hot path and checksums every
/// span; detection strength for torn/flipped bytes is equivalent for this
/// purpose.
std::uint64_t chunk_checksum(const char* data, std::size_t n) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * kPrime;
    h ^= h >> 29;
  }
  std::uint64_t tail = n % 8;  // fold the residue length so "abc" and
  for (std::size_t k = 0; i + k < n; ++k)  // "abc\0" cannot collide
    tail |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data[i + k]))
            << (8 + 8 * k);
  h = (h ^ tail) * kPrime;
  h ^= h >> 29;
  return h;
}

void write_chunk(std::ostream& out, char type, const std::string& payload) {
  std::string frame;
  frame.push_back(type);
  put_u64(frame, payload.size());
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::string sum;
  put_u64(sum, chunk_checksum(payload.data(), payload.size()));
  out.write(sum.data(), static_cast<std::streamsize>(sum.size()));
}

bool read_exact(std::istream& in, char* dst, std::size_t n) {
  in.read(dst, static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n && !in.bad();
}

bool read_u64(std::istream& in, std::uint64_t& v) {
  char buf[8];
  if (!read_exact(in, buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return true;
}

}  // namespace

// ---- writer ---------------------------------------------------------------

ChunkedTraceWriter::ChunkedTraceWriter(std::ostream& out,
                                       const StreamTraceMeta& meta,
                                       std::size_t records_per_chunk)
    : out_(out),
      records_per_chunk_(records_per_chunk < 1 ? 1 : records_per_chunk) {
  // A span record is ~100 encoded bytes; reserving one full chunk up front
  // keeps the hot-path appends from ever reallocating (flush_chunk clears
  // but never shrinks, so the capacity persists for the whole run).
  span_buf_.reserve(records_per_chunk_ * 104);
  out_.write(kMagic, kMagicLen);
  std::string payload;
  put_str(payload, meta.label);
  put_str(payload, meta.trace_name);
  put_i64(payload, meta.delta);
  put_u64(payload, meta.sample_every);
  write_chunk(out_, kChunkMeta, payload);
}

ChunkedTraceWriter::~ChunkedTraceWriter() {
  // An unfinished stream has no footer and is unreadable; failing loud here
  // beats a silently corrupt trace file.
  QOS_CHECK(finished_);
}

void ChunkedTraceWriter::flush_chunk(char type, std::string& payload,
                                     std::uint64_t& count) {
  if (count == 0) return;
  std::string framed;
  put_u64(framed, count);
  framed += payload;
  write_chunk(out_, type, framed);
  payload.clear();
  count = 0;
}

void ChunkedTraceWriter::on_span(const RequestSpan& span) {
  QOS_EXPECTS(!finished_);
  put_span(span_buf_, span);
  ++footer_.spans;
  if (++span_count_ >= records_per_chunk_)
    flush_chunk(kChunkSpans, span_buf_, span_count_);
}

void ChunkedTraceWriter::on_fault(const FaultSpan& fault) {
  QOS_EXPECTS(!finished_);
  put_fault(fault_buf_, fault);
  ++footer_.faults;
  if (++fault_count_ >= records_per_chunk_)
    flush_chunk(kChunkFaults, fault_buf_, fault_count_);
}

void ChunkedTraceWriter::on_slack(const SlackSample& sample) {
  QOS_EXPECTS(!finished_);
  put_slack(slack_buf_, sample);
  ++footer_.slack;
  if (++slack_count_ >= records_per_chunk_)
    flush_chunk(kChunkSlack, slack_buf_, slack_count_);
}

void ChunkedTraceWriter::finish(std::uint64_t observed,
                                std::uint64_t dropped) {
  QOS_EXPECTS(!finished_);
  flush_chunk(kChunkSpans, span_buf_, span_count_);
  flush_chunk(kChunkFaults, fault_buf_, fault_count_);
  flush_chunk(kChunkSlack, slack_buf_, slack_count_);
  footer_.observed = observed;
  footer_.dropped = dropped;
  std::string payload;
  put_u64(payload, footer_.observed);
  put_u64(payload, footer_.dropped);
  put_u64(payload, footer_.spans);
  put_u64(payload, footer_.faults);
  put_u64(payload, footer_.slack);
  write_chunk(out_, kChunkFooter, payload);
  out_.flush();
  finished_ = true;
}

// ---- cursor scan ----------------------------------------------------------

bool is_chunked_trace(const std::string& head) {
  return head.size() >= kMagicLen &&
         head.compare(0, kMagicLen, kMagic, kMagicLen) == 0;
}

std::optional<StreamTraceFooter> scan_trace_stream(
    std::istream& in, StreamTraceMeta* meta,
    const std::function<void(const RequestSpan&)>& on_span,
    const std::function<void(const FaultSpan&)>& on_fault,
    const std::function<void(const SlackSample&)>& on_slack) {
  char magic[kMagicLen];
  if (!read_exact(in, magic, kMagicLen) ||
      std::string(magic, kMagicLen) != kMagic)
    return std::nullopt;

  StreamTraceFooter footer;
  StreamTraceFooter counted;  // records actually decoded this scan
  bool have_meta = false;
  bool have_footer = false;
  std::string payload;

  while (!have_footer) {
    const int type = in.get();
    if (type == std::char_traits<char>::eof()) return std::nullopt;
    std::uint64_t len = 0;
    if (!read_u64(in, len) || len > kMaxChunkPayload) return std::nullopt;

    bool want = true;
    switch (type) {
      case kChunkMeta:
      case kChunkFooter: break;
      case kChunkSpans: want = static_cast<bool>(on_span); break;
      case kChunkFaults: want = static_cast<bool>(on_fault); break;
      case kChunkSlack: want = static_cast<bool>(on_slack); break;
      default: return std::nullopt;  // unknown chunk type
    }
    if (!want) {
      // Skip payload + checksum without reading; the footer's record counts
      // are trusted for skipped types.
      in.seekg(static_cast<std::streamoff>(len + 8), std::ios_base::cur);
      if (!in) return std::nullopt;
      continue;
    }

    payload.resize(len);
    if (!read_exact(in, payload.data(), len)) return std::nullopt;
    std::uint64_t checksum = 0;
    if (!read_u64(in, checksum) ||
        checksum != chunk_checksum(payload.data(), payload.size()))
      return std::nullopt;

    Reader r(payload.data(), payload.size());
    switch (type) {
      case kChunkMeta: {
        StreamTraceMeta m;
        if (!r.str(m.label) || !r.str(m.trace_name) || !r.i64(m.delta) ||
            !r.u64(m.sample_every))
          return std::nullopt;
        if (meta != nullptr) *meta = m;
        have_meta = true;
        break;
      }
      case kChunkSpans: {
        std::uint64_t n = 0;
        if (!r.u64(n)) return std::nullopt;
        RequestSpan s;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (!get_span(r, s)) return std::nullopt;
          on_span(s);
        }
        counted.spans += n;
        break;
      }
      case kChunkFaults: {
        std::uint64_t n = 0;
        if (!r.u64(n)) return std::nullopt;
        FaultSpan f;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (!get_fault(r, f)) return std::nullopt;
          on_fault(f);
        }
        counted.faults += n;
        break;
      }
      case kChunkSlack: {
        std::uint64_t n = 0;
        if (!r.u64(n)) return std::nullopt;
        SlackSample s;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (!get_slack(r, s)) return std::nullopt;
          on_slack(s);
        }
        counted.slack += n;
        break;
      }
      case kChunkFooter: {
        if (!r.u64(footer.observed) || !r.u64(footer.dropped) ||
            !r.u64(footer.spans) || !r.u64(footer.faults) ||
            !r.u64(footer.slack))
          return std::nullopt;
        have_footer = true;
        break;
      }
    }
    if (!r.ok() || r.pos() != payload.size()) return std::nullopt;
  }

  // The footer is the last chunk: trailing bytes mean a torn append.
  if (in.peek() != std::char_traits<char>::eof()) return std::nullopt;
  if (!have_meta) return std::nullopt;
  // Footer totals must agree with what was actually decoded.
  if (on_span && counted.spans != footer.spans) return std::nullopt;
  if (on_fault && counted.faults != footer.faults) return std::nullopt;
  if (on_slack && counted.slack != footer.slack) return std::nullopt;
  return footer;
}

// ---- streaming analysis ---------------------------------------------------

std::optional<StreamAnalysis> analyze_trace_stream(std::istream& in,
                                                   Time delta) {
  StreamAnalysis a;
  a.slack.min_slack = std::numeric_limits<std::int64_t>::max();

  // Pass 1: faults + slack; span chunks are seeked over.
  auto pass1 = scan_trace_stream(
      in, &a.meta, nullptr,
      [&a](const FaultSpan& f) { a.faults.push_back(f); },
      [&a](const SlackSample& s) {
        ++a.slack.samples;
        if (s.slack < a.slack.min_slack) a.slack.min_slack = s.slack;
        if (s.slack < 1) ++a.slack.violations;
        if (s.slack == 1) ++a.slack.near_violations;
      });
  if (!pass1) return std::nullopt;
  a.footer = *pass1;
  if (a.slack.samples == 0) a.slack.min_slack = 0;
  if (delta < 0) delta = a.meta.delta;
  a.meta.delta = delta;  // the delta the classification below used

  // Pass 2: classify spans against the now-complete fault-window set.
  // attribute_miss only consults trace.faults, so a fault-only TraceData
  // reuses the materialized classifier verbatim — the two paths cannot
  // drift.
  TraceData fault_ctx;
  fault_ctx.faults = a.faults;
  in.clear();
  in.seekg(0);
  auto pass2 = scan_trace_stream(
      in, nullptr,
      [&a, &fault_ctx, delta](const RequestSpan& s) {
        if (!s.complete()) return;
        ++a.completed;
        if (s.response_us() <= delta) {
          ++a.met;
          return;
        }
        ++a.missed;
        ++a.by_cause[static_cast<int>(attribute_miss(s, fault_ctx, delta))];
      },
      nullptr, nullptr);
  if (!pass2) return std::nullopt;
  return a;
}

std::string trace_analysis_text_stream(const StreamAnalysis& a) {
  std::string out;
  char line[256];
  auto emit = [&out, &line] { out += line; };

  std::snprintf(line, sizeof(line), "=== %s%s%s ===\n",
                a.meta.label.empty() ? "trace" : a.meta.label.c_str(),
                a.meta.trace_name.empty() ? "" : " / ",
                a.meta.trace_name.c_str());
  emit();
  std::snprintf(line, sizeof(line),
                "delta_us=%lld sample_every=%llu observed=%llu "
                "retained_spans=%llu dropped=%llu\n",
                static_cast<long long>(a.meta.delta),
                static_cast<unsigned long long>(a.meta.sample_every),
                static_cast<unsigned long long>(a.footer.observed),
                static_cast<unsigned long long>(a.footer.spans),
                static_cast<unsigned long long>(a.footer.dropped));
  emit();
  std::snprintf(line, sizeof(line), "completed=%llu met=%llu missed=%llu\n",
                static_cast<unsigned long long>(a.completed),
                static_cast<unsigned long long>(a.met),
                static_cast<unsigned long long>(a.missed));
  emit();
  out += "miss attribution:\n";
  for (int c = 0; c < kMissCauseCount; ++c) {
    std::snprintf(line, sizeof(line), "  %-20s %llu\n",
                  miss_cause_name(static_cast<MissCause>(c)),
                  static_cast<unsigned long long>(a.by_cause[c]));
    emit();
  }
  out += "queue timeline: omitted (streamed trace)\n";
  std::snprintf(line, sizeof(line),
                "miser slack: samples=%llu min=%lld violations=%llu "
                "near_violations=%llu\n",
                static_cast<unsigned long long>(a.slack.samples),
                static_cast<long long>(a.slack.min_slack),
                static_cast<unsigned long long>(a.slack.violations),
                static_cast<unsigned long long>(a.slack.near_violations));
  emit();
  return out;
}

// ---- streaming Perfetto export --------------------------------------------

namespace {

/// EventWriter sibling that appends straight to an ostream, so the JSON
/// document is never held in memory.
class StreamEventWriter {
 public:
  explicit StreamEventWriter(std::ostream& out) : out_(out) {}

  void meta_process(int pid, const std::string& name) {
    begin();
    append("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
           "\"args\":{\"name\":\"%s\"}}",
           pid, name.c_str());
  }
  void meta_thread(int pid, int tid, const std::string& name) {
    begin();
    append("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"%s\"}}",
           pid, tid, name.c_str());
  }
  void async(int pid, int tid, std::uint64_t id, Time begin_ts, Time end_ts,
             const char* name, const char* args) {
    begin();
    append("{\"ph\":\"b\",\"cat\":\"queue\",\"pid\":%d,\"tid\":%d,"
           "\"id\":%llu,\"ts\":%lld,\"name\":\"%s\",\"args\":{%s}}",
           pid, tid, static_cast<unsigned long long>(id),
           static_cast<long long>(begin_ts), name, args);
    begin();
    append("{\"ph\":\"e\",\"cat\":\"queue\",\"pid\":%d,\"tid\":%d,"
           "\"id\":%llu,\"ts\":%lld,\"name\":\"%s\"}",
           pid, tid, static_cast<unsigned long long>(id),
           static_cast<long long>(end_ts), name);
  }
  void slice(int pid, int tid, Time ts, Time dur, const char* name,
             const char* args) {
    begin();
    append("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,\"dur\":%lld,"
           "\"name\":\"%s\",\"args\":{%s}}",
           pid, tid, static_cast<long long>(ts), static_cast<long long>(dur),
           name, args);
  }
  void instant(int pid, int tid, Time ts, const char* name,
               const char* args) {
    begin();
    append("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,\"s\":\"t\","
           "\"name\":\"%s\",\"args\":{%s}}",
           pid, tid, static_cast<long long>(ts), name, args);
  }

 private:
  void begin() {
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << "  ";
  }
  void append(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out_ << buf;
  }

  std::ostream& out_;
  bool first_ = true;
};

const char* stream_fault_kind_label(std::int64_t kind) {
  switch (kind) {
    case 0: return "capacity_loss";
    case 1: return "stall";
    case 2: return "latency_spike";
  }
  return "fault";
}

}  // namespace

bool perfetto_trace_json_stream(std::istream& trace_in,
                                std::ostream& json_out) {
  // Single-trace layout mirroring perfetto_trace_json's first run: pid 1 =
  // queues, 2 = servers, 3 = faults.  Track metadata is emitted lazily on
  // first sight (legal in trace_event JSON — viewers associate by pid/tid),
  // which is what lets this stay single-pass and bounded.
  json_out << "{\"traceEvents\":[\n";
  StreamEventWriter w(json_out);

  StreamTraceMeta meta;  // filled by the meta chunk before any data chunk
  bool queues_announced = false;
  bool faults_announced = false;
  std::vector<bool> server_announced;
  char args[256];

  auto prefix = [&meta]() -> std::string {
    return meta.label.empty() ? "run" : meta.label;
  };
  auto announce_queues = [&] {
    if (queues_announced) return;
    queues_announced = true;
    w.meta_process(1, prefix() + " queues");
    w.meta_thread(1, 1, "Q1 (primary)");
    w.meta_thread(1, 2, "Q2 (overflow)");
    w.meta_process(2, prefix() + " servers");
  };

  auto on_span = [&](const RequestSpan& s) {
    announce_queues();
    const int queue_tid = s.klass == ServiceClass::kPrimary ? 1 : 2;
    if (s.service_start != kNoTime) {
      const Time enq = s.enqueue != kNoTime ? s.enqueue : s.arrival;
      if (enq != kNoTime && s.service_start >= enq) {
        std::snprintf(args, sizeof(args),
                      "\"seq\":%llu,\"depth\":%lld,\"max_q1\":%lld",
                      static_cast<unsigned long long>(s.seq),
                      static_cast<long long>(s.depth_at_decision),
                      static_cast<long long>(s.max_q1_at_decision));
        w.async(1, queue_tid, s.seq, enq, s.service_start, "wait", args);
      }
      if (s.completion != kNoTime && s.completion >= s.service_start) {
        const int srv = static_cast<int>(s.server);
        if (srv >= static_cast<int>(server_announced.size()))
          server_announced.resize(srv + 1, false);
        if (!server_announced[srv]) {
          server_announced[srv] = true;
          w.meta_thread(2, srv + 1, "server " + std::to_string(srv));
        }
        std::snprintf(
            args, sizeof(args),
            "\"seq\":%llu,\"client\":%u,\"class\":\"%s\","
            "\"slack\":%lld,\"inflation_us\":%lld",
            static_cast<unsigned long long>(s.seq), s.client,
            s.klass == ServiceClass::kPrimary ? "primary" : "overflow",
            static_cast<long long>(s.slack_funding),
            static_cast<long long>(s.inflation_us));
        w.slice(2, srv + 1, s.service_start, s.completion - s.service_start,
                "serve", args);
      }
    }
    if (s.demoted != 0 && s.decision != kNoTime) {
      std::snprintf(args, sizeof(args),
                    "\"seq\":%llu,\"degraded_max_q1\":%lld",
                    static_cast<unsigned long long>(s.seq),
                    static_cast<long long>(s.max_q1_at_decision));
      w.instant(1, queue_tid, s.decision, "demote", args);
    }
  };
  auto on_fault = [&](const FaultSpan& f) {
    if (!faults_announced) {
      faults_announced = true;
      w.meta_process(3, prefix() + " faults");
      w.meta_thread(3, 1, "windows");
    }
    std::snprintf(args, sizeof(args), "\"severity_ppm\":%lld",
                  static_cast<long long>(f.severity_ppm));
    w.slice(3, 1, f.begin, f.end - f.begin, stream_fault_kind_label(f.kind),
            args);
  };

  auto footer = scan_trace_stream(trace_in, &meta, on_span, on_fault,
                                  /*on_slack=*/nullptr);
  json_out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  json_out.flush();
  return footer.has_value();
}

}  // namespace qos
