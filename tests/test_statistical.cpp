#include "core/statistical.h"

#include <gtest/gtest.h>

#include "core/capacity.h"
#include "trace/generator.h"
#include "trace/rate_series.h"

namespace qos {
namespace {

TEST(GaussianQuantile, KnownValues) {
  EXPECT_NEAR(gaussian_upper_quantile(0.5), 0.0, 1e-3);
  EXPECT_NEAR(gaussian_upper_quantile(0.1587), 1.0, 2e-3);  // 1 sigma
  EXPECT_NEAR(gaussian_upper_quantile(0.0228), 2.0, 2e-3);  // 2 sigma
  EXPECT_NEAR(gaussian_upper_quantile(0.00135), 3.0, 5e-3);
  EXPECT_NEAR(gaussian_upper_quantile(0.05), 1.6449, 2e-3);
  EXPECT_NEAR(gaussian_upper_quantile(0.01), 2.3263, 2e-3);
}

TEST(GaussianQuantile, MonotoneInEps) {
  double prev = 1e9;
  for (double eps : {0.001, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    const double z = gaussian_upper_quantile(eps);
    EXPECT_LT(z, prev);
    prev = z;
  }
}

TEST(StatisticalCapacity, PoissonWindowStats) {
  // Poisson at 500 IOPS in 1 s windows: mean ~500, stddev ~sqrt(500)~22.
  Trace t = generate_poisson(500, 300 * kUsPerSec, 1301);
  StatisticalEstimate est = statistical_capacity(t, kUsPerSec, 0.05);
  EXPECT_NEAR(est.mean_iops, 500, 15);
  EXPECT_NEAR(est.stddev_iops, 22.4, 8);
  EXPECT_GT(est.capacity_iops, est.mean_iops);
  // ~5% of windows should exceed the estimate.
  const auto series = rate_series(t, kUsPerSec);
  int over = 0;
  for (const auto& p : series)
    if (p.iops > est.capacity_iops) ++over;
  EXPECT_NEAR(static_cast<double>(over) / static_cast<double>(series.size()),
              0.05, 0.05);
}

TEST(StatisticalCapacity, TighterEpsMeansMoreCapacity) {
  Trace t = generate_poisson(400, 120 * kUsPerSec, 1303);
  const double loose = statistical_capacity(t, kUsPerSec, 0.1).capacity_iops;
  const double tight =
      statistical_capacity(t, kUsPerSec, 0.001).capacity_iops;
  EXPECT_GT(tight, loose);
}

TEST(StatisticalMultiplex, MeansAddVariancesAdd) {
  StatisticalEstimate a{100, 30, 0};
  StatisticalEstimate b{200, 40, 0};
  StatisticalEstimate m = statistical_multiplex({a, b}, 0.05);
  EXPECT_DOUBLE_EQ(m.mean_iops, 300);
  EXPECT_DOUBLE_EQ(m.stddev_iops, 50);  // sqrt(900 + 1600)
  EXPECT_NEAR(m.capacity_iops, 300 + 1.6449 * 50, 0.2);
}

TEST(StatisticalMultiplex, GainOverSumOfIndividuals) {
  // The whole point of statistical multiplexing: the pooled estimate is
  // below the sum of the individual ones (stddevs add sub-linearly).
  Trace a = generate_poisson(300, 120 * kUsPerSec, 1305);
  Trace b = generate_poisson(300, 120 * kUsPerSec, 1307);
  const auto ea = statistical_capacity(a, kUsPerSec, 0.01);
  const auto eb = statistical_capacity(b, kUsPerSec, 0.01);
  const auto pooled = statistical_multiplex({ea, eb}, 0.01);
  EXPECT_LT(pooled.capacity_iops, ea.capacity_iops + eb.capacity_iops);
}

TEST(StatisticalCapacity, NoDeadlineSemantics) {
  // The baseline's known blind spot (why the paper decomposes instead):
  // sub-window clusters that wreck a 10 ms deadline are invisible to 1 s
  // window statistics.  RTT's Cmin(100%, 10 ms) sees them.
  WorkloadSpec spec;
  spec.states = {{300, 2.0}};
  spec.batches = {.batches_per_sec = 0.1,
                  .mean_size = 30,
                  .spread_us = 1'000,
                  .giant_prob = 0,
                  .giant_factor = 1,
                  .max_size = 40};
  Trace t = generate_workload(spec, 120 * kUsPerSec, 1309);
  const double stat = statistical_capacity(t, kUsPerSec, 0.01).capacity_iops;
  const double rtt = min_capacity(t, 1.0, from_ms(10)).cmin_iops;
  EXPECT_GT(rtt, 2 * stat);
}

TEST(StatisticalCapacity, DegenerateShortTrace) {
  Trace t = generate_poisson(100, kUsPerSec / 2, 1311);
  StatisticalEstimate est = statistical_capacity(t, kUsPerSec, 0.05);
  EXPECT_DOUBLE_EQ(est.capacity_iops, 0);  // < 2 windows: no estimate
}

}  // namespace
}  // namespace qos
