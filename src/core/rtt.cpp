#include "core/rtt.h"

#include <algorithm>

#include "util/service_timer.h"

namespace qos {

std::int64_t max_q1_slots(double capacity_iops, Time delta) {
  QOS_EXPECTS(capacity_iops > 0 && delta >= 0);
  // floor(C * delta) computed in double; values in practice are far below
  // 2^53 so the conversion is exact.
  return static_cast<std::int64_t>(capacity_iops * to_sec(delta));
}

Decomposition rtt_decompose(const Trace& trace, double capacity_iops,
                            Time delta) {
  QOS_EXPECTS(capacity_iops > 0 && delta >= 0);
  const std::int64_t max_q1 = max_q1_slots(capacity_iops, delta);

  Decomposition d;
  d.klass.assign(trace.size(), ServiceClass::kOverflow);
  d.q1_finish.assign(trace.size(), kTimeMax);

  // Completion instants of admitted requests, in admission (FIFO) order.
  std::vector<Time> finish;
  finish.reserve(trace.size());
  std::size_t completed = 0;  // admitted requests finished by current time

  ServiceTimer timer(capacity_iops);
  Time last_finish = 0;  // finish of the most recently admitted request

  for (const auto& r : trace) {
    while (completed < finish.size() && finish[completed] <= r.arrival)
      ++completed;
    const std::int64_t len_q1 =
        static_cast<std::int64_t>(finish.size() - completed);
    if (len_q1 < max_q1) {
      const Time start = std::max(r.arrival, last_finish);
      Time dur = timer.next();
      if (dur <= 0) dur = 1;
      last_finish = start + dur;
      finish.push_back(last_finish);
      d.klass[r.seq] = ServiceClass::kPrimary;
      d.q1_finish[r.seq] = last_finish;
      ++d.admitted;
    }
  }
  return d;
}

}  // namespace qos
