#include "core/multi_tenant.h"

#include <algorithm>

#include "core/capacity.h"
#include "util/check.h"

namespace qos {

TenantSpec planned_tenant_spec(double cmin_iops, Time delta,
                               std::size_t tenant_count) {
  QOS_EXPECTS(tenant_count > 0);
  TenantSpec spec;
  spec.cmin_iops = cmin_iops;
  spec.delta = delta;
  spec.overflow_weight =
      overflow_headroom_iops(delta) / static_cast<double>(tenant_count);
  return spec;
}

std::vector<TenantSpec> plan_tenant_specs(std::span<const Trace> tenants,
                                          double fraction, Time delta) {
  std::vector<TenantSpec> specs;
  specs.reserve(tenants.size());
  for (const Trace& t : tenants)
    specs.push_back(planned_tenant_spec(
        min_capacity(t, fraction, delta).cmin_iops, delta, tenants.size()));
  return specs;
}

MultiTenantScheduler::MultiTenantScheduler(std::vector<TenantSpec> tenants) {
  QOS_EXPECTS(!tenants.empty());
  QOS_EXPECTS(tenants.size() <= kMaxTenants);
  std::vector<double> weights;
  for (const auto& spec : tenants) {
    QOS_EXPECTS(spec.cmin_iops > 0);
    QOS_EXPECTS(spec.delta > 0);
    QOS_EXPECTS(spec.overflow_weight > 0);
    tenants_.push_back(Tenant{spec,
                              RttAdmission(spec.cmin_iops, spec.delta),
                              {},
                              {},
                              0});
    weights.push_back(spec.cmin_iops);       // Q1 flow
    weights.push_back(spec.overflow_weight); // Q2 flow
  }
  fair_ = std::make_unique<SfqScheduler>(std::move(weights));
}

void MultiTenantScheduler::on_arrival(const Request& r, Time now) {
  QOS_EXPECTS(r.client < tenants_.size());
  Tenant& tenant = tenants_[r.client];
  if (tenant.admission.admit(tenant.len_q1)) {
    ++tenant.len_q1;
    tenant.q1.push_back(r);
    fair_->enqueue(q1_flow(r.client), r.seq, 1.0, now);
  } else {
    tenant.q2.push_back(r);
    fair_->enqueue(q2_flow(r.client), r.seq, 1.0, now);
  }
}

std::optional<Scheduler::Dispatch> MultiTenantScheduler::next_for(int server,
                                                                  Time now) {
  QOS_EXPECTS(server == 0);
  auto pick = fair_->dequeue(now);
  if (!pick) return std::nullopt;
  const auto tenant_index = static_cast<std::size_t>(pick->flow / 2);
  Tenant& tenant = tenants_[tenant_index];
  const bool primary = pick->flow % 2 == 0;
  auto& queue = primary ? tenant.q1 : tenant.q2;
  QOS_CHECK(!queue.empty());
  QOS_CHECK(queue.front().seq == pick->handle);
  Dispatch d{queue.front(),
             primary ? ServiceClass::kPrimary : ServiceClass::kOverflow};
  queue.pop_front();
  return d;
}

void MultiTenantScheduler::on_complete(const Request& r, ServiceClass klass,
                                       int, Time) {
  if (klass != ServiceClass::kPrimary) return;
  QOS_EXPECTS(r.client < tenants_.size());
  Tenant& tenant = tenants_[r.client];
  QOS_CHECK(tenant.len_q1 > 0);
  --tenant.len_q1;
}

std::int64_t MultiTenantScheduler::len_q1(std::size_t tenant) const {
  QOS_EXPECTS(tenant < tenants_.size());
  return tenants_[tenant].len_q1;
}

std::size_t MultiTenantScheduler::q2_queued(std::size_t tenant) const {
  QOS_EXPECTS(tenant < tenants_.size());
  return tenants_[tenant].q2.size();
}

double MultiTenantScheduler::planned_capacity_iops() const {
  double reserved = 0;
  Time tightest = tenants_.front().spec.delta;
  for (const auto& t : tenants_) {
    reserved += t.spec.cmin_iops;
    tightest = std::min(tightest, t.spec.delta);
  }
  return reserved + overflow_headroom_iops(tightest);
}

}  // namespace qos
