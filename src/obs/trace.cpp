#include "obs/trace.h"

#include <algorithm>

#include "util/check.h"

namespace qos {

Tracer::Tracer(TracerConfig config)
    : sample_every_(config.sample_every < 1 ? 1 : config.sample_every),
      max_spans_(config.max_spans) {
  if (max_spans_ > 0) done_.reserve(max_spans_);
  // Precompute the divisibility-test constants for sampled() (see trace.h).
  std::uint64_t d = sample_every_;
  while ((d & 1) == 0) {
    d >>= 1;
    ++sample_shift_;
  }
  sample_low_mask_ = (std::uint64_t{1} << sample_shift_) - 1;
  // Inverse of odd d mod 2^64 by Newton iteration: each step doubles the
  // number of correct low bits, so five steps from a 3-bit seed suffice.
  std::uint64_t inv = d;  // correct to 3 bits for odd d
  for (int i = 0; i < 5; ++i) inv *= 2 - d * inv;
  sample_inv_ = inv;
  sample_thresh_ = ~std::uint64_t{0} / d;
}

void Tracer::annotate(std::string label, std::string trace_name, Time delta) {
  label_ = std::move(label);
  trace_name_ = std::move(trace_name);
  delta_ = delta;
}

void Tracer::clear() {
  live_.clear();
  done_.clear();
  ring_next_ = 0;
  faults_.clear();
  slack_.clear();
  observed_ = 0;
  dropped_ = 0;
}

RequestSpan& Tracer::live(const Event& e) {
  bool inserted = false;
  RequestSpan& span = live_.find_or_insert(e.seq, inserted);
  if (inserted) {
    span.seq = e.seq;
    span.client = e.client;
    ++observed_;
  }
  return span;
}

void Tracer::finish(RequestSpan span) {
  if (span_sink_ != nullptr) {
    span_sink_->on_span(span);  // streaming mode: forward, never retain
    return;
  }
  if (max_spans_ == 0 || done_.size() < max_spans_) {
    done_.push_back(span);
    return;
  }
  // Ring saturated: overwrite the oldest completed span.
  done_[ring_next_] = span;
  ring_next_ = (ring_next_ + 1) % max_spans_;
  ++dropped_;
}

void Tracer::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kFaultBegin: {
      // Multi-server runs announce each window once per server (every
      // FaultyServer carries its own schedule copy); record it once.  The
      // dedup vector is kept even in streaming mode — it is bounded by the
      // fault schedule, not the run length.
      const FaultSpan span{e.time, e.c, e.a, e.b};
      if (std::find(faults_.begin(), faults_.end(), span) == faults_.end()) {
        faults_.push_back(span);
        if (span_sink_ != nullptr) span_sink_->on_fault(span);
      }
      break;
    }
    case EventKind::kFaultEnd:
      break;  // the begin event already carried the window end
    case EventKind::kSlackDispatch:
      // Slack accounting is a run-level series: exact even when request
      // sampling drops the span itself.
      if (span_sink_ != nullptr) {
        span_sink_->on_slack({e.time, e.a});
      } else {
        slack_.push_back({e.time, e.a});
      }
      if (sampled(e.seq)) live(e).slack_funding = e.a;
      break;
    case EventKind::kArrival:
      if (sampled(e.seq)) live(e).arrival = e.time;
      break;
    case EventKind::kAdmit: {
      if (!sampled(e.seq)) break;
      RequestSpan& s = live(e);
      s.decision = s.enqueue = e.time;
      s.admitted = 1;
      s.depth_at_decision = e.a;
      s.max_q1_at_decision = e.b;
      s.klass = ServiceClass::kPrimary;
      break;
    }
    case EventKind::kReject: {
      if (!sampled(e.seq)) break;
      RequestSpan& s = live(e);
      s.decision = s.enqueue = e.time;
      s.admitted = 0;
      s.depth_at_decision = e.a;
      s.klass = ServiceClass::kOverflow;
      break;
    }
    case EventKind::kDemote: {
      if (!sampled(e.seq)) break;
      RequestSpan& s = live(e);
      s.decision = s.enqueue = e.time;
      s.admitted = 0;
      s.demoted = 1;
      s.max_q1_at_decision = e.a;  // the degraded bound that rejected it
      s.klass = ServiceClass::kOverflow;
      break;
    }
    case EventKind::kDispatch: {
      if (!sampled(e.seq)) break;
      RequestSpan& s = live(e);
      s.service_start = e.time;
      s.server = e.server;
      s.klass = e.klass;
      break;
    }
    case EventKind::kSlowService: {
      if (!sampled(e.seq)) break;
      live(e).inflation_us = e.b - e.a;
      break;
    }
    case EventKind::kCompletion: {
      if (!sampled(e.seq)) break;
      RequestSpan& s = live(e);
      s.completion = e.time;
      s.klass = e.klass;
      RequestSpan finished = s;
      live_.erase(e.seq);
      finish(finished);
      break;
    }
    case EventKind::kDiskService:
    case EventKind::kSlaBreach:
    case EventKind::kSlaRecover:
    case EventKind::kReprovision:
      break;  // not part of the request lifecycle model
  }
  if (downstream_ != nullptr) downstream_->on_event(e);
}

TraceData Tracer::data() const {
  TraceData out;
  out.label = label_;
  out.trace_name = trace_name_;
  out.delta = delta_;
  out.sample_every = sample_every_;
  out.faults = faults_;
  out.slack = slack_;
  out.observed = observed_;
  out.dropped = dropped_;
  if (max_spans_ > 0 && done_.size() == max_spans_ && ring_next_ != 0) {
    // Unroll the ring: oldest retained span first.
    out.spans.reserve(done_.size());
    out.spans.insert(out.spans.end(), done_.begin() + ring_next_, done_.end());
    out.spans.insert(out.spans.end(), done_.begin(),
                     done_.begin() + ring_next_);
  } else {
    out.spans = done_;
  }
  return out;
}

}  // namespace qos
