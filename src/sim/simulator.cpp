#include "sim/simulator.h"

#include <algorithm>

#include "obs/sink.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/indexed_heap.h"

namespace qos {

std::vector<CompletionRecord> SimResult::by_seq() const {
  std::vector<CompletionRecord> out(completions.size());
  std::vector<bool> seen(completions.size(), false);
  for (const auto& c : completions) {
    QOS_CHECK(c.seq < out.size());
    // A duplicate seq means the run fanned out (one arrival, multiple
    // completions) — such results have holes too, since |completions| >
    // |trace|.  Use by_seq_multi() for fan-out schedulers.
    QOS_CHECK(!seen[c.seq]);
    seen[c.seq] = true;
    out[c.seq] = c;
  }
  // size() slots, unique in-range seqs => every slot filled (pigeonhole).
  return out;
}

std::vector<std::vector<CompletionRecord>> SimResult::by_seq_multi() const {
  std::uint64_t max_seq = 0;
  for (const auto& c : completions) max_seq = std::max(max_seq, c.seq);
  std::vector<std::vector<CompletionRecord>> out(
      completions.empty() ? 0 : max_seq + 1);
  for (const auto& c : completions) out[c.seq].push_back(c);
  return out;
}

Time SimResult::makespan() const {
  Time last = 0;
  for (const auto& c : completions) last = std::max(last, c.finish);
  return last;
}

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   std::span<Server* const> servers, EventSink* sink) {
  QOS_EXPECTS(static_cast<int>(servers.size()) == scheduler.server_count());
  QOS_EXPECTS(!servers.empty());
  QOS_EXPECTS(trace.validate());

  const Probe probe(sink);
  if (sink != nullptr)
    for (Server* s : servers) s->attach_observability(sink);
  SimResult result;
  result.completions.reserve(trace.size());

  // Per-server in-flight record, valid while the server is in `pending`.
  std::vector<CompletionRecord> slot(servers.size());
  // Busy servers keyed by finish time; (key, id) order makes equal-time
  // pops come out in server-index order, matching the documented contract.
  IndexedMinHeap<Time> pending(static_cast<int>(servers.size()));
  // Idle servers, ascending — the only ones fill_servers has to visit.
  std::vector<int> idle(servers.size());
  for (std::size_t s = 0; s < servers.size(); ++s)
    idle[s] = static_cast<int>(s);
  std::size_t next_arrival = 0;

  // Offer work to every idle server until no server accepts.  A dispatch on
  // one server can change scheduler state (e.g. Miser slack), so loop to a
  // fixed point.  Visiting only the idle list (kept sorted ascending)
  // preserves the original full-scan call order on the scheduler exactly.
  auto fill_servers = [&](Time now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t k = 0; k < idle.size();) {
        const int s = idle[k];
        auto d = scheduler.next_for(s, now);
        if (!d) {
          ++k;
          continue;
        }
        const Time dur =
            servers[static_cast<std::size_t>(s)]->service_duration(d->request,
                                                                   now);
        QOS_CHECK(dur > 0);
        slot[static_cast<std::size_t>(s)] = CompletionRecord{
            .seq = d->request.seq,
            .client = d->request.client,
            .arrival = d->request.arrival,
            .start = now,
            .finish = now + dur,
            .klass = d->klass,
            .server = static_cast<std::uint8_t>(s),
        };
        pending.push(s, now + dur);
        idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(k));
        if (probe) {
          probe.emit({.time = now,
                      .seq = d->request.seq,
                      .a = now - d->request.arrival,
                      .client = d->request.client,
                      .kind = EventKind::kDispatch,
                      .klass = d->klass,
                      .server = static_cast<std::uint8_t>(s)});
        }
        progress = true;
      }
    }
  };

  // The engine's notion of "now" is a VirtualClock advanced to each event
  // instant — the same clock seam the online layer serves wall time
  // through (util/clock.h), and a monotonicity check on the event order.
  VirtualClock clock;
  while (true) {
    // Next event: min over pending completions and the next arrival.
    const Time next_completion =
        pending.empty() ? kTimeMax : pending.top_key();
    const Time arrival_time = next_arrival < trace.size()
                                  ? trace[next_arrival].arrival
                                  : kTimeMax;
    const Time next_event = std::min(next_completion, arrival_time);
    if (next_event == kTimeMax) break;  // drained
    clock.advance_to(next_event);
    const Time now = clock.now();

    // Completions first (see scheduler.h contract).  Process every server
    // finishing exactly at `now`; the heap's (finish, server) order yields
    // them in server-index order for determinism.
    while (!pending.empty() && pending.top_key() == now) {
      const int s = pending.pop();
      const CompletionRecord& record = slot[static_cast<std::size_t>(s)];
      result.completions.push_back(record);
      idle.insert(std::lower_bound(idle.begin(), idle.end(), s), s);
      if (probe) {
        probe.emit({.time = now,
                    .seq = record.seq,
                    .a = record.response_time(),
                    .client = record.client,
                    .kind = EventKind::kCompletion,
                    .klass = record.klass,
                    .server = static_cast<std::uint8_t>(s)});
      }
      scheduler.on_complete(Request{.arrival = record.arrival,
                                    .seq = record.seq,
                                    .client = record.client},
                            record.klass, s, now);
    }

    // Then all arrivals at `now`.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival == now) {
      if (probe) {
        probe.emit({.time = now,
                    .seq = trace[next_arrival].seq,
                    .client = trace[next_arrival].client,
                    .kind = EventKind::kArrival});
      }
      scheduler.on_arrival(trace[next_arrival], now);
      ++next_arrival;
    }

    fill_servers(now);
  }

  if (scheduler.fans_out())
    QOS_ENSURES(result.completions.size() >= trace.size());
  else
    QOS_ENSURES(result.completions.size() == trace.size());
  return result;
}

SimResult simulate(const Trace& trace, Scheduler& scheduler, Server& server,
                   EventSink* sink) {
  Server* servers[] = {&server};
  return simulate(trace, scheduler, servers, sink);
}

}  // namespace qos
