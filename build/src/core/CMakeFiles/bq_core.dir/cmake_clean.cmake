file(REMOVE_RECURSE
  "CMakeFiles/bq_core.dir/adaptive.cpp.o"
  "CMakeFiles/bq_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/bq_core.dir/admission.cpp.o"
  "CMakeFiles/bq_core.dir/admission.cpp.o.d"
  "CMakeFiles/bq_core.dir/capacity.cpp.o"
  "CMakeFiles/bq_core.dir/capacity.cpp.o.d"
  "CMakeFiles/bq_core.dir/consolidation.cpp.o"
  "CMakeFiles/bq_core.dir/consolidation.cpp.o.d"
  "CMakeFiles/bq_core.dir/multi_class.cpp.o"
  "CMakeFiles/bq_core.dir/multi_class.cpp.o.d"
  "CMakeFiles/bq_core.dir/multi_tenant.cpp.o"
  "CMakeFiles/bq_core.dir/multi_tenant.cpp.o.d"
  "CMakeFiles/bq_core.dir/rtt.cpp.o"
  "CMakeFiles/bq_core.dir/rtt.cpp.o.d"
  "CMakeFiles/bq_core.dir/shaper.cpp.o"
  "CMakeFiles/bq_core.dir/shaper.cpp.o.d"
  "CMakeFiles/bq_core.dir/sla.cpp.o"
  "CMakeFiles/bq_core.dir/sla.cpp.o.d"
  "CMakeFiles/bq_core.dir/statistical.cpp.o"
  "CMakeFiles/bq_core.dir/statistical.cpp.o.d"
  "libbq_core.a"
  "libbq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
