
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/bq_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/bq_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/bq_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/consolidation.cpp" "src/core/CMakeFiles/bq_core.dir/consolidation.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/consolidation.cpp.o.d"
  "/root/repo/src/core/multi_class.cpp" "src/core/CMakeFiles/bq_core.dir/multi_class.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/multi_class.cpp.o.d"
  "/root/repo/src/core/multi_tenant.cpp" "src/core/CMakeFiles/bq_core.dir/multi_tenant.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/multi_tenant.cpp.o.d"
  "/root/repo/src/core/rtt.cpp" "src/core/CMakeFiles/bq_core.dir/rtt.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/rtt.cpp.o.d"
  "/root/repo/src/core/shaper.cpp" "src/core/CMakeFiles/bq_core.dir/shaper.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/shaper.cpp.o.d"
  "/root/repo/src/core/sla.cpp" "src/core/CMakeFiles/bq_core.dir/sla.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/sla.cpp.o.d"
  "/root/repo/src/core/statistical.cpp" "src/core/CMakeFiles/bq_core.dir/statistical.cpp.o" "gcc" "src/core/CMakeFiles/bq_core.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/curves/CMakeFiles/bq_curves.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fq/CMakeFiles/bq_fq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
