# Empty compiler generated dependencies file for fig2_shaping.
# This may be replaced when dependencies are built.
