file(REMOVE_RECURSE
  "CMakeFiles/test_wfq_drr.dir/test_wfq_drr.cpp.o"
  "CMakeFiles/test_wfq_drr.dir/test_wfq_drr.cpp.o.d"
  "test_wfq_drr"
  "test_wfq_drr.pdb"
  "test_wfq_drr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfq_drr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
