#include "analysis/response_stats.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

std::vector<CompletionRecord> completions(
    std::initializer_list<Time> response_times_ms,
    ServiceClass klass = ServiceClass::kPrimary) {
  std::vector<CompletionRecord> out;
  std::uint64_t seq = 0;
  for (Time ms : response_times_ms) {
    CompletionRecord c;
    c.seq = seq++;
    c.arrival = 0;
    c.start = 0;
    c.finish = from_ms(static_cast<double>(ms));
    c.klass = klass;
    out.push_back(c);
  }
  return out;
}

TEST(ResponseStats, FractionWithin) {
  auto cs = completions({10, 20, 30, 40});
  ResponseStats stats(cs);
  EXPECT_DOUBLE_EQ(stats.fraction_within(from_ms(5)), 0.0);
  EXPECT_DOUBLE_EQ(stats.fraction_within(from_ms(10)), 0.25);  // inclusive
  EXPECT_DOUBLE_EQ(stats.fraction_within(from_ms(25)), 0.5);
  EXPECT_DOUBLE_EQ(stats.fraction_within(from_ms(40)), 1.0);
}

TEST(ResponseStats, PercentileNearestRank) {
  auto cs = completions({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  ResponseStats stats(cs);
  EXPECT_EQ(stats.percentile(0.5), from_ms(50));
  EXPECT_EQ(stats.percentile(0.9), from_ms(90));
  EXPECT_EQ(stats.percentile(1.0), from_ms(100));
  EXPECT_EQ(stats.percentile(0.0), from_ms(10));
  EXPECT_EQ(stats.percentile(0.05), from_ms(10));  // ceil(0.5) -> rank 1
}

TEST(ResponseStats, MaxAndMean) {
  auto cs = completions({10, 20, 60});
  ResponseStats stats(cs);
  EXPECT_EQ(stats.max(), from_ms(60));
  EXPECT_DOUBLE_EQ(stats.mean_us(), 30'000.0);
}

TEST(ResponseStats, ClassFilter) {
  auto primary = completions({10, 10}, ServiceClass::kPrimary);
  auto overflow = completions({500}, ServiceClass::kOverflow);
  std::vector<CompletionRecord> all(primary);
  all.insert(all.end(), overflow.begin(), overflow.end());
  ResponseStats p(all, ServiceClass::kPrimary);
  ResponseStats o(all, ServiceClass::kOverflow);
  ResponseStats both(all);
  EXPECT_EQ(p.count(), 2u);
  EXPECT_EQ(o.count(), 1u);
  EXPECT_EQ(both.count(), 3u);
  EXPECT_EQ(o.max(), from_ms(500));
}

TEST(ResponseStats, PaperBucketsCumulative) {
  auto cs = completions({20, 80, 300, 800, 3000});
  ResponseStats stats(cs);
  auto b = stats.paper_buckets();
  EXPECT_DOUBLE_EQ(b.le_50, 0.2);
  EXPECT_DOUBLE_EQ(b.le_100, 0.4);
  EXPECT_DOUBLE_EQ(b.le_500, 0.6);
  EXPECT_DOUBLE_EQ(b.le_1000, 0.8);
  EXPECT_DOUBLE_EQ(b.gt_1000, 0.2);
}

TEST(ResponseStats, PaperBucketsDisjoint) {
  auto cs = completions({20, 80, 300, 800, 3000});
  ResponseStats stats(cs);
  auto b = stats.paper_buckets(/*cumulative=*/false);
  EXPECT_DOUBLE_EQ(b.le_50, 0.2);
  EXPECT_DOUBLE_EQ(b.le_100, 0.2);
  EXPECT_DOUBLE_EQ(b.le_500, 0.2);
  EXPECT_DOUBLE_EQ(b.le_1000, 0.2);
  EXPECT_DOUBLE_EQ(b.gt_1000, 0.2);
  EXPECT_NEAR(b.le_50 + b.le_100 + b.le_500 + b.le_1000 + b.gt_1000, 1.0,
              1e-12);
}

TEST(ResponseStats, CdfAtBounds) {
  auto cs = completions({10, 20, 30});
  ResponseStats stats(cs);
  const Time bounds[] = {from_ms(10), from_ms(20), from_ms(30)};
  auto cdf = stats.cdf(bounds);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 1.0 / 3);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(ResponseStats, EmptyBehaviour) {
  ResponseStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.fraction_within(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_us(), 0.0);
}

TEST(ResponseStats, SortedView) {
  auto cs = completions({30, 10, 20});
  ResponseStats stats(cs);
  auto view = stats.sorted();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], from_ms(10));
  EXPECT_EQ(view[2], from_ms(30));
}

}  // namespace
}  // namespace qos
