// Multi-client capacity consolidation (paper Sections 2.2 and 4.4).
//
// For several clients sharing one server, a simple estimate adds each
// client's individual Cmin.  For raw (100%) provisioning that estimate
// assumes bursts align and grossly over-provisions; after decomposition the
// per-client capacities are near the workload's average, variance is gone,
// and the sum becomes an accurate predictor of the merged workload's actual
// requirement — the paper's Figures 7 and 8.
#pragma once

#include <span>
#include <vector>

#include "core/capacity.h"
#include "trace/trace.h"

namespace qos {

struct ConsolidationReport {
  std::vector<double> individual_iops;  ///< Cmin per input workload
  double estimate_iops = 0;             ///< sum of individual Cmin
  double actual_iops = 0;               ///< Cmin of the merged workload

  /// actual / estimate: ~1.0 means the simple sum is accurate; << 1 means it
  /// over-provisions.
  double ratio() const {
    return estimate_iops == 0 ? 0 : actual_iops / estimate_iops;
  }
  /// |actual - estimate| / estimate.
  double relative_error() const {
    return estimate_iops == 0
               ? 0
               : (actual_iops > estimate_iops
                      ? (actual_iops - estimate_iops)
                      : (estimate_iops - actual_iops)) /
                     estimate_iops;
  }
};

/// Evaluate the aggregation estimate for the given client traces at QoS
/// target (fraction, delta).  fraction = 1.0 reproduces the paper's
/// "traditional 100%" rows.
ConsolidationReport consolidate(std::span<const Trace> clients,
                                double fraction, Time delta);

/// Assemble a report from already-computed per-client capacities and the
/// merged workload's actual requirement.  consolidate() is this plus the
/// Cmin searches; the runner's consolidate_parallel computes the searches
/// concurrently and funnels them through the same assembly, so the two
/// paths cannot drift.
ConsolidationReport assemble_consolidation(std::vector<double> individual,
                                           double actual_iops);

}  // namespace qos
