// Control-plane sweep: closed-loop re-provisioning vs static plans under
// chaos, across fleet sizes.
//
// Every cell runs the same data path (run_control_plane): n tenants whose
// demand *swaps* mid-run — evens 480 -> 960 IOPS at t = 6 s, odds the
// mirror — through one shared ControlledTenantScheduler provisioned from a
// 5 s profiling prefix, under an optional mid-run capacity brownout.  The
// grid is
//
//   tenants {8, 64, 256} x chaos {calm, brown30, brown50} x mode
//   {static, local, controller}
//
// and the printed metric is the paper's actual promise: the fraction of
// tenants whose *guaranteed-class* (Q1) within-delta fraction ended below
// the target f.  Under a brownout the static plan keeps admitting into the
// shared FIFO Q1 at rates the server no longer delivers and the backlog
// breaks the guarantee for everyone; local degradation re-tightens each
// bound to monitored health (honest shedding, guarantee holds) but cannot
// move capacity; the controller both re-tightens and chases the demand
// swap, which shows up as `hot gain` — IOPS re-provisioned toward the
// tenants that turned hot — and fewer demotions for the same guarantee.
//
// A second section re-runs the 8-tenant brown50 static and controller
// cells serially with the PR 4 tracer attached and prints per-cause
// deadline-miss attribution.  Fault evidence wins the attribution chain, so
// both columns charge to fault_window; the controller's defence shows as
// roughly half the total misses for the same fault (it stops feeding the
// backlog) and an order less Q2 starvation.
//
// Cells fan out over --threads workers; planning solves hit the shared
// result cache (tenant traces repeat across chaos levels and modes), so
// warm re-runs skip every Cmin search.  Stdout is byte-identical across
// --threads values and cache states — the tables carry simulation results
// only; wall-clock goes to the JSON (BENCH_control_plane.json), which also
// carries a "headline" object per cell that scripts/check_perf.py --chaos
// gates against bench/BENCH_chaos.baseline.json in CI.
#include <cstdio>
#include <string>
#include <vector>

#include "control/harness.h"
#include "fault/fault_schedule.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "runner/bench_io.h"
#include "runner/thread_pool.h"
#include "trace/generator.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Time kDelta = from_ms(10);
constexpr double kFraction = 0.95;
constexpr Time kDuration = 20 * kUsPerSec;
constexpr Time kShift = 6 * kUsPerSec;
constexpr std::uint64_t kSeed = 42;

constexpr std::size_t kTenantCounts[] = {8, 64, 256};

struct ChaosSpec {
  const char* name;
  double loss;  ///< brownout severity over [8 s, 16 s); 0 = fault-free
};

constexpr ChaosSpec kChaos[] = {
    {"calm", 0.0},
    {"brown30", 0.30},
    {"brown50", 0.50},
};

constexpr ControlMode kModes[] = {ControlMode::kStatic,
                                  ControlMode::kLocalDegraded,
                                  ControlMode::kController};

// Mid-run demand swap: the static plan profiles the first 5 s, so evens are
// provisioned for 480 IOPS and then offer 960 — the reallocation case.
std::vector<Trace> make_tenants(std::size_t n) {
  std::vector<Trace> tenants;
  tenants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RegimeSchedule schedule;
    if (i % 2 == 0) {
      schedule.phase(0, 480).phase(kShift, 960);
    } else {
      schedule.phase(0, 960).phase(kShift, 480);
    }
    tenants.push_back(generate_regime_switching(schedule, kDuration,
                                                kSeed + 17 * i + 1));
  }
  return tenants;
}

ControlPlaneConfig make_config(ControlMode mode, const ChaosSpec& chaos,
                               ResultCache* cache) {
  ControlPlaneConfig config;
  config.fraction = kFraction;
  config.delta = kDelta;
  config.mode = mode;
  config.profile_window = 5 * kUsPerSec;
  config.controller.epoch = kUsPerSec;
  config.controller.demand_window = 2 * kUsPerSec;
  config.controller.step_fraction = 0.5;
  config.cache = cache;
  if (chaos.loss > 0)
    config.faults.brownout(8 * kUsPerSec, 16 * kUsPerSec, chaos.loss);
  return config;
}

struct Cell {
  std::size_t tenant_index = 0;  ///< into the per-count trace sets
  std::size_t tenants = 0;
  const ChaosSpec* chaos = nullptr;
  ControlMode mode = ControlMode::kStatic;
  ControlOutcome outcome;
};

// IOPS the run moved toward the tenants that turned hot (evens), the
// controller's reallocation signature; ~0 for the frozen modes.
double hot_gain(const ControlOutcome& out) {
  double gain = 0;
  for (std::size_t i = 0; i < out.tenants.size(); i += 2)
    gain += out.tenants[i].final_iops - out.tenants[i].planned_iops;
  return gain;
}

// Global all-class within-delta fraction (the tail someone must lose in
// overload; printed alongside the guarantee, never gated).
double all_within(const ControlOutcome& out) {
  std::uint64_t requests = 0, misses = 0;
  for (const TenantOutcome& t : out.tenants) {
    requests += t.requests;
    misses += t.misses;
  }
  return requests == 0 ? 1.0
                       : 1.0 - static_cast<double>(misses) /
                                   static_cast<double>(requests);
}

void print_grid(const std::vector<Cell>& cells) {
  std::printf(
      "-- Sweep: tenants x chaos x mode (Q1 viol = fraction of tenants "
      "whose Q1 guarantee broke) --\n");
  AsciiTable table;
  table.add("tenants", "chaos", "mode", "Q1 viol", "Q1 miss", "all within",
            "demoted", "reprov", "hot gain (IOPS)");
  for (const Cell& cell : cells)
    table.add(cell.tenants, cell.chaos->name,
              control_mode_name(cell.mode),
              format_double(cell.outcome.tail_violation_fraction, 3),
              format_double(cell.outcome.q1_miss_fraction, 4),
              format_double(all_within(cell.outcome), 4),
              cell.outcome.demotions, cell.outcome.reprovisions,
              format_double(hot_gain(cell.outcome), 0));
  std::printf("%s\n", table.to_string().c_str());
}

void print_attribution(const std::vector<Trace>& tenants,
                       ResultCache* cache) {
  std::printf(
      "-- Miss attribution: 8 tenants, brown50, static vs controller --\n");
  AttributionReport reports[2];
  const char* labels[2] = {"static", "controller"};
  const ControlMode modes[2] = {ControlMode::kStatic,
                                ControlMode::kController};
  for (int m = 0; m < 2; ++m) {
    Tracer tracer;
    tracer.annotate(labels[m], "regime-swap-8", kDelta);
    ControlPlaneConfig config = make_config(modes[m], kChaos[2], cache);
    config.tracer = &tracer;
    run_control_plane(tenants, config);
    reports[m] = attribute_misses(tracer.data(), kDelta);
  }
  AsciiTable table;
  table.add("cause", "static", "controller");
  for (int c = 0; c < kMissCauseCount; ++c)
    table.add(miss_cause_name(static_cast<MissCause>(c)),
              reports[0].by_cause[c], reports[1].by_cause[c]);
  table.add("total misses", reports[0].misses.size(),
            reports[1].misses.size());
  std::printf("%s\n", table.to_string().c_str());
}

// Hand-rolled JSON: the headline object is what check_perf.py --chaos
// diffs, so its shape (tenants -> chaos -> mode -> metrics) is the contract
// with bench/BENCH_chaos.baseline.json.
void write_json(const BenchOptions& options, const std::vector<Cell>& cells,
                double wall_seconds) {
  const std::string path = options.json_path.empty()
                               ? "BENCH_control_plane.json"
                               : options.json_path;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "control_plane: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"name\": \"control_plane\",\n");
  std::fprintf(f, "  \"wall_seconds\": %.3f,\n", wall_seconds);
  std::fprintf(f, "  \"threads\": %d,\n", options.threads);
  std::fprintf(f, "  \"cells\": %zu,\n", cells.size());
  std::fprintf(f, "  \"headline\": {\n");
  for (std::size_t t = 0; t < std::size(kTenantCounts); ++t) {
    std::fprintf(f, "    \"t%zu\": {\n", kTenantCounts[t]);
    for (std::size_t c = 0; c < std::size(kChaos); ++c) {
      std::fprintf(f, "      \"%s\": {\n", kChaos[c].name);
      for (std::size_t m = 0; m < std::size(kModes); ++m) {
        const Cell& cell =
            cells[(t * std::size(kChaos) + c) * std::size(kModes) + m];
        std::fprintf(
            f,
            "        \"%s\": {\"tail_violation\": %.6f, \"q1_miss\": %.6f, "
            "\"within\": %.6f, \"demotions\": %llu, \"reprovisions\": %llu, "
            "\"hot_gain_iops\": %.1f}%s\n",
            control_mode_name(cell.mode),
            cell.outcome.tail_violation_fraction,
            cell.outcome.q1_miss_fraction, all_within(cell.outcome),
            static_cast<unsigned long long>(cell.outcome.demotions),
            static_cast<unsigned long long>(cell.outcome.reprovisions),
            hot_gain(cell.outcome), m + 1 == std::size(kModes) ? "" : ",");
      }
      std::fprintf(f, "      }%s\n",
                   c + 1 == std::size(kChaos) ? "" : ",");
    }
    std::fprintf(f, "    }%s\n",
                 t + 1 == std::size(kTenantCounts) ? "" : ",");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "control_plane: wrote %s\n", path.c_str());
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  std::printf("Control plane: runtime re-provisioning vs static plans\n");
  std::printf(
      "demand swap at t=%.0f s (evens 480->960 IOPS, odds mirror), "
      "delta=%.0f ms, f=%.2f\n\n",
      to_sec(kShift), to_ms(kDelta), kFraction);

  std::vector<std::vector<Trace>> tenant_sets;
  tenant_sets.reserve(std::size(kTenantCounts));
  for (std::size_t n : kTenantCounts) tenant_sets.push_back(make_tenants(n));

  auto cache = options.make_cache();
  std::vector<Cell> cells;
  for (std::size_t t = 0; t < std::size(kTenantCounts); ++t)
    for (const ChaosSpec& chaos : kChaos)
      for (ControlMode mode : kModes) {
        Cell cell;
        cell.tenant_index = t;
        cell.tenants = kTenantCounts[t];
        cell.chaos = &chaos;
        cell.mode = mode;
        cells.push_back(cell);
      }

  // Cells are independent simulations; the harness itself stays serial per
  // cell (run_control_plane plans inline when its pool is null), so the
  // fan-out is across cells only and results land by index — stdout is
  // bit-identical for any --threads.
  ThreadPool pool(options.threads);
  std::vector<ControlOutcome> outcomes =
      pool.parallel_map(cells.size(), [&](std::size_t i) {
        const Cell& cell = cells[i];
        const ControlPlaneConfig config =
            make_config(cell.mode, *cell.chaos, cache.get());
        return run_control_plane(tenant_sets[cell.tenant_index], config);
      });
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells[i].outcome = std::move(outcomes[i]);

  print_grid(cells);
  print_attribution(tenant_sets[0], cache.get());
  write_json(options, cells, bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  run(parse_bench_args(argc, argv, "control_plane"));
  return 0;
}
