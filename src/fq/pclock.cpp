#include "fq/pclock.h"

#include <algorithm>
#include <cmath>

namespace qos {
namespace {

bool pick_wheel(int flow_count, PClockHeadTags head_tags) {
  switch (head_tags) {
    case PClockHeadTags::kHeap:
      return false;
    case PClockHeadTags::kWheel:
      return true;
    case PClockHeadTags::kAuto:
      return flow_count >= PClockScheduler::kWheelAutoThreshold;
  }
  return false;
}

void validate(const PClockSla& sla) {
  QOS_EXPECTS(sla.sigma >= 0);
  QOS_EXPECTS(sla.rho > 0);
  QOS_EXPECTS(sla.delta >= 0);
}

}  // namespace

PClockScheduler::PClockScheduler(std::vector<PClockSla> slas,
                                 PClockHeadTags head_tags) {
  QOS_EXPECTS(!slas.empty());
  for (const PClockSla& sla : slas) validate(sla);
  flow_count_ = static_cast<int>(slas.size());
  dense_slas_ = std::move(slas);
  use_wheel_ = pick_wheel(flow_count_, head_tags);
  head_deadline_.reset(flow_count_);
}

PClockScheduler PClockScheduler::uniform(int flow_count, PClockSla sla,
                                         PClockHeadTags head_tags) {
  QOS_EXPECTS(flow_count > 0);
  validate(sla);
  PClockScheduler s;
  s.flow_count_ = flow_count;
  s.uniform_sla_ = sla;
  s.use_wheel_ = pick_wheel(flow_count, head_tags);
  s.head_deadline_.reset(flow_count);
  return s;
}

std::uint32_t PClockScheduler::activate(int flow) {
  const std::uint32_t slot = index_.find_or_insert(flow);
  if (slot == state_.size()) {
    state_.emplace_back();
    FlowState& f = state_.back();
    f.sla = sla_of(flow);
    f.tokens = f.sla.sigma;
  }
  return slot;
}

bool PClockScheduler::head_empty() const {
  return use_wheel_ ? wheel_.empty() : head_deadline_.empty();
}

void PClockScheduler::head_push(std::uint32_t slot, Time deadline, int flow) {
  if (use_wheel_)
    wheel_.push(slot, static_cast<std::uint64_t>(deadline), flow);
  else
    head_deadline_.push(static_cast<int>(slot), TagKey{deadline, flow});
}

void PClockScheduler::head_update(std::uint32_t slot, Time deadline) {
  if (use_wheel_) {
    wheel_.update(slot, static_cast<std::uint64_t>(deadline));
  } else {
    const int flow = head_deadline_.key_of(static_cast<int>(slot)).second;
    head_deadline_.update(static_cast<int>(slot), TagKey{deadline, flow});
  }
}

std::uint32_t PClockScheduler::head_top_slot() {
  return use_wheel_ ? wheel_.top()
                    : static_cast<std::uint32_t>(head_deadline_.top());
}

int PClockScheduler::head_top_flow() {
  return use_wheel_ ? wheel_.top_tie() : head_deadline_.top_key().second;
}

void PClockScheduler::head_pop() {
  if (use_wheel_)
    wheel_.pop();
  else
    head_deadline_.pop();
}

void PClockScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                              Time now) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  QOS_EXPECTS(cost > 0);
  const std::uint32_t slot = activate(flow);
  FlowState& f = state_[slot];

  // Earn tokens since the last update, capped at the burst allowance.
  f.tokens = std::min(
      f.sla.sigma,
      f.tokens + f.sla.rho * to_sec(now - f.last_update));
  f.last_update = now;

  Item item;
  item.handle = handle;
  // The bucket goes into debt on non-conforming requests so that successive
  // deadlines march forward at 1/rho — a flow sending above its reservation
  // sees deadlines recede ahead of wall clock instead of its stale backlog
  // starving other flows (this is pClock's tagging, not a plain leaky
  // bucket).
  f.tokens -= cost;
  if (f.tokens >= 0) {
    item.deadline = now + f.sla.delta;  // conforming: due delta after arrival
  } else {
    item.deadline = now + f.sla.delta + from_sec(-f.tokens / f.sla.rho);
  }
  // Deadlines within a flow must be non-decreasing (FIFO per flow).
  if (!f.queue.empty())
    item.deadline = std::max(item.deadline, f.queue.back().deadline);
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (use_wheel_) {
    // The wheel keys on unsigned ticks; pClock deadlines are >= now, so a
    // non-negative clock keeps the uint64 embedding order-preserving.
    QOS_EXPECTS(now >= 0);
    QOS_CHECK(item.deadline >= 0);
    // Deadlines are never earlier than the clock, so `now` is a floor for
    // all future keys — lets wheel renormalizations stay cache-friendly.
    wheel_.advance_floor(static_cast<std::uint64_t>(now));
  }
  if (was_empty) head_push(slot, item.deadline, flow);
}

std::optional<FqDispatch> PClockScheduler::dequeue(Time) {
  if (head_empty()) return std::nullopt;
  const std::uint32_t slot = head_top_slot();
  const int flow = head_top_flow();
  FlowState& f = state_[slot];
  const Item item = f.queue.front();
  f.queue.pop_front();
  if (f.queue.empty())
    head_pop();
  else
    head_update(slot, f.queue.front().deadline);
  return FqDispatch{flow, item.handle};
}

bool PClockScheduler::empty() const { return head_empty(); }

std::size_t PClockScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  const std::uint32_t slot = index_.find(flow);
  return slot == FlatSlotMap::kNoSlot ? 0 : state_[slot].queue.size();
}

std::size_t PClockScheduler::approx_memory_bytes() const {
  std::size_t queues = 0;
  for (const FlowState& f : state_) queues += f.queue.capacity() * sizeof(Item);
  return index_.memory_bytes() + state_.capacity() * sizeof(FlowState) +
         queues + head_deadline_.memory_bytes() + wheel_.memory_bytes() +
         dense_slas_.capacity() * sizeof(PClockSla);
}

}  // namespace qos
