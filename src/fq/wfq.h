// WFQ — Weighted Fair Queueing (Demers/Keshav/Shenker 1990), with the
// self-clocked (SCFQ, Golestani 1994) virtual-time approximation standard
// in implementations: V follows the finish tag of the item in service
// instead of simulating the exact GPS reference.
//
// Each item gets F = max(V, F_prev) + cost/weight and dispatch picks the
// smallest finish tag among all backlogged flows — no eligibility test,
// which is the difference from WF2Q and why WFQ can run a flow ahead of its
// fluid share.  Included for completeness of the cited family and for the
// ablation bench.
//
// Hot path, million-flow layout: flow ids are sparse keys into a
// FlatSlotMap, which assigns each flow a dense slot on first touch; per-flow
// state is slot-indexed and grows with flows *seen*, not with the configured
// id space.  Backlogged flows sit in a slot-keyed indexed min-heap whose key
// is (head finish tag, flow id), so dequeue is O(log backlogged) and the
// lowest-flow-id tie-break reproduces the original scan order exactly
// (differential-tested against fq/scan_reference.h).  The uniform-weight
// constructor keeps weights in O(1) space.
#pragma once

#include <utility>
#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/flat_table.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class WfqScheduler final : public FairScheduler {
 public:
  explicit WfqScheduler(std::vector<double> weights);

  /// Million-flow form: `flow_count` flows all weighing `weight`, stored
  /// O(1) — no dense per-flow vector is ever materialized.  (A named
  /// factory, not a constructor overload: `{1.0, 2.0}` must keep meaning a
  /// two-flow weight vector, never a narrowed (count, weight) pair.)
  static WfqScheduler uniform(int flow_count, double weight);

  int flow_count() const override { return flow_count_; }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

  /// Bytes held by the scheduler's own structures: O(flows seen).
  std::size_t approx_memory_bytes() const;

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double finish = 0;
  };
  struct FlowState {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };
  /// Heap key: (head finish tag, flow id) — lexicographic pair order is the
  /// scan-equivalent total order even though the heap is slot-keyed.
  using TagKey = std::pair<double, int>;

  double weight_of(int flow) const {
    return dense_weights_.empty()
               ? uniform_weight_
               : dense_weights_[static_cast<std::size_t>(flow)];
  }

  /// Slot for `flow`, materializing per-flow state on first touch.
  std::uint32_t activate(int flow);

  WfqScheduler() = default;  ///< used by the uniform() factory

  int flow_count_ = 0;
  std::vector<double> dense_weights_;  ///< empty in uniform-weight mode
  double uniform_weight_ = 1;
  FlatSlotMap index_;                 ///< flow id -> dense slot
  std::vector<FlowState> state_;      ///< slot-indexed, grows on first touch
  IndexedMinHeap<TagKey> head_finish_;  ///< backlogged slots by head finish
  double v_ = 0;
  double total_weight_ = 0;
};

}  // namespace qos
