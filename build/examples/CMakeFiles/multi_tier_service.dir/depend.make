# Empty dependencies file for multi_tier_service.
# This may be replaced when dependencies are built.
