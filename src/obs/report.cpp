#include "obs/report.h"

#include <algorithm>
#include <cstdio>

namespace qos {

namespace {

ClassReport summarize(const LatencyHistogram& h, std::uint64_t within_delta) {
  ClassReport r;
  r.count = h.count();
  if (h.empty()) return r;
  r.mean_us = h.mean_us();
  r.p50 = h.quantile(0.50);
  r.p90 = h.quantile(0.90);
  r.p99 = h.quantile(0.99);
  r.p999 = h.quantile(0.999);
  r.max = h.max();
  r.fraction_within_delta =
      static_cast<double>(within_delta) / static_cast<double>(r.count);
  return r;
}

std::string format_line(const char* name, const ClassReport& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-9s n=%-7llu mean=%.1fms p50=%.1fms p90=%.1fms p99=%.1fms "
                "p99.9=%.1fms max=%.1fms within-delta=%.1f%%\n",
                name, static_cast<unsigned long long>(c.count),
                c.mean_us / 1e3, to_ms(c.p50), to_ms(c.p90), to_ms(c.p99),
                to_ms(c.p999), to_ms(c.max), 100 * c.fraction_within_delta);
  return buf;
}

void append_class_csv(std::string& out, const char* name,
                      const ClassReport& c) {
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "%s,count,%llu\n%s,mean_us,%.3f\n%s,p50_us,%lld\n"
                "%s,p90_us,%lld\n%s,p99_us,%lld\n%s,p999_us,%lld\n"
                "%s,max_us,%lld\n%s,fraction_within_delta,%.6f\n",
                name, static_cast<unsigned long long>(c.count), name,
                c.mean_us, name, static_cast<long long>(c.p50), name,
                static_cast<long long>(c.p90), name,
                static_cast<long long>(c.p99), name,
                static_cast<long long>(c.p999), name,
                static_cast<long long>(c.max), name, c.fraction_within_delta);
  out += buf;
}

void append_class_json(std::string& out, const char* name,
                       const ClassReport& c, bool trailing_comma) {
  char buf[280];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"count\": %llu, \"mean_us\": %.3f, \"p50_us\": %lld, "
      "\"p90_us\": %lld, \"p99_us\": %lld, \"p999_us\": %lld, "
      "\"max_us\": %lld, \"fraction_within_delta\": %.6f}%s\n",
      name, static_cast<unsigned long long>(c.count), c.mean_us,
      static_cast<long long>(c.p50), static_cast<long long>(c.p90),
      static_cast<long long>(c.p99), static_cast<long long>(c.p999),
      static_cast<long long>(c.max), c.fraction_within_delta,
      trailing_comma ? "," : "");
  out += buf;
}

}  // namespace

ShapingReport build_shaping_report(const SimResult& sim, Time delta,
                                   const MetricRegistry* registry) {
  QOS_EXPECTS(delta > 0);
  ShapingReport report;
  report.delta = delta;

  LatencyHistogram all, primary, overflow;
  std::uint64_t within_all = 0, within_primary = 0, within_overflow = 0;
  std::uint64_t primary_count = 0;
  for (const auto& c : sim.completions) {
    const Time rt = c.response_time();
    all.record(rt);
    const bool within = rt <= delta;
    within_all += within;
    if (c.klass == ServiceClass::kPrimary) {
      primary.record(rt);
      within_primary += within;
      ++primary_count;
    } else {
      overflow.record(rt);
      within_overflow += within;
    }
  }
  report.all = summarize(all, within_all);
  report.primary = summarize(primary, within_primary);
  report.overflow = summarize(overflow, within_overflow);

  // Miss runs are over *arrival* order: sort completion indices by seq.
  std::vector<const CompletionRecord*> by_seq;
  by_seq.reserve(sim.completions.size());
  for (const auto& c : sim.completions) by_seq.push_back(&c);
  std::sort(by_seq.begin(), by_seq.end(),
            [](const CompletionRecord* a, const CompletionRecord* b) {
              return a->seq < b->seq;
            });
  std::uint64_t run = 0;
  auto close_run = [&report](std::uint64_t& r) {
    if (r == 0) return;
    if (report.miss_run_lengths.size() < r)
      report.miss_run_lengths.resize(r, 0);
    ++report.miss_run_lengths[r - 1];
    r = 0;
  };
  for (const CompletionRecord* c : by_seq) {
    if (c->response_time() > delta) {
      ++run;
      ++report.deadline_misses;
    } else {
      close_run(run);
    }
  }
  close_run(run);

  report.admitted = primary_count;
  report.rejected = report.all.count - primary_count;
  if (registry != nullptr) {
    if (const Counter* c = registry->find_counter("rtt.admitted"))
      report.admitted = c->value();
    if (const Counter* c = registry->find_counter("rtt.rejected"))
      report.rejected = c->value();
    if (const OccupancySeries* s = registry->find_occupancy("q1.occupancy")) {
      report.q1_occupancy = {s->mean(), s->max(), !s->empty()};
    }
    if (const OccupancySeries* s = registry->find_occupancy("q2.occupancy")) {
      report.q2_occupancy = {s->mean(), s->max(), !s->empty()};
    }
  }
  return report;
}

std::string ShapingReport::to_string() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ShapingReport (delta = %.1f ms)\n", to_ms(delta));
  out += buf;
  out += format_line("all", all);
  out += format_line("primary", primary);
  out += format_line("overflow", overflow);
  std::snprintf(buf, sizeof(buf),
                "rtt       admitted=%llu rejected=%llu\n",
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(rejected));
  out += buf;
  if (q1_occupancy.tracked || q2_occupancy.tracked) {
    std::snprintf(buf, sizeof(buf),
                  "occupancy Q1 mean=%.2f max=%lld | Q2 mean=%.2f max=%lld\n",
                  q1_occupancy.mean,
                  static_cast<long long>(q1_occupancy.max), q2_occupancy.mean,
                  static_cast<long long>(q2_occupancy.max));
    out += buf;
  }
  if (traced) {
    // Only traced runs print this line, so untraced stdout stays
    // byte-identical to pre-tracing builds.
    std::snprintf(buf, sizeof(buf),
                  "trace     observed=%llu dropped=%llu\n",
                  static_cast<unsigned long long>(trace_observed),
                  static_cast<unsigned long long>(trace_dropped));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "misses    total=%llu max-run=%llu runs:",
                static_cast<unsigned long long>(deadline_misses),
                static_cast<unsigned long long>(max_miss_run()));
  out += buf;
  if (miss_run_lengths.empty()) out += " none";
  for (std::size_t k = 0; k < miss_run_lengths.size(); ++k) {
    if (miss_run_lengths[k] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %zux%llu", k + 1,
                  static_cast<unsigned long long>(miss_run_lengths[k]));
    out += buf;
  }
  out += "\n";
  return out;
}

std::string ShapingReport::to_csv() const {
  std::string out = "section,key,value\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "config,delta_us,%lld\n",
                static_cast<long long>(delta));
  out += buf;
  append_class_csv(out, "all", all);
  append_class_csv(out, "primary", primary);
  append_class_csv(out, "overflow", overflow);
  std::snprintf(buf, sizeof(buf), "rtt,admitted,%llu\nrtt,rejected,%llu\n",
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(rejected));
  out += buf;
  auto occ = [&out](const char* name, const OccupancyReport& o) {
    if (!o.tracked) return;
    char b[96];
    std::snprintf(b, sizeof(b), "%s,mean,%.4f\n%s,max,%lld\n", name, o.mean,
                  name, static_cast<long long>(o.max));
    out += b;
  };
  occ("q1_occupancy", q1_occupancy);
  occ("q2_occupancy", q2_occupancy);
  if (traced) {
    std::snprintf(buf, sizeof(buf),
                  "trace,observed,%llu\ntrace,dropped,%llu\n",
                  static_cast<unsigned long long>(trace_observed),
                  static_cast<unsigned long long>(trace_dropped));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "misses,total,%llu\n",
                static_cast<unsigned long long>(deadline_misses));
  out += buf;
  for (std::size_t k = 0; k < miss_run_lengths.size(); ++k) {
    if (miss_run_lengths[k] == 0) continue;
    std::snprintf(buf, sizeof(buf), "miss_run,%zu,%llu\n", k + 1,
                  static_cast<unsigned long long>(miss_run_lengths[k]));
    out += buf;
  }
  return out;
}

std::string ShapingReport::to_json() const {
  std::string out = "{\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  \"delta_us\": %lld,\n",
                static_cast<long long>(delta));
  out += buf;
  append_class_json(out, "all", all, true);
  append_class_json(out, "primary", primary, true);
  append_class_json(out, "overflow", overflow, true);
  std::snprintf(buf, sizeof(buf),
                "  \"rtt\": {\"admitted\": %llu, \"rejected\": %llu},\n",
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(rejected));
  out += buf;
  auto occ = [&out](const char* name, const OccupancyReport& o,
                    bool comma) {
    char b[160];
    std::snprintf(b, sizeof(b),
                  "  \"%s\": {\"tracked\": %s, \"mean\": %.4f, "
                  "\"max\": %lld}%s\n",
                  name, o.tracked ? "true" : "false", o.mean,
                  static_cast<long long>(o.max), comma ? "," : "");
    out += b;
  };
  occ("q1_occupancy", q1_occupancy, true);
  occ("q2_occupancy", q2_occupancy, true);
  std::snprintf(buf, sizeof(buf),
                "  \"trace\": {\"traced\": %s, \"observed\": %llu, "
                "\"dropped\": %llu},\n",
                traced ? "true" : "false",
                static_cast<unsigned long long>(trace_observed),
                static_cast<unsigned long long>(trace_dropped));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"deadline_misses\": %llu,\n",
                static_cast<unsigned long long>(deadline_misses));
  out += buf;
  out += "  \"miss_run_lengths\": [";
  for (std::size_t k = 0; k < miss_run_lengths.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(miss_run_lengths[k]);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace qos
