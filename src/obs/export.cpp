#include "obs/export.h"

#include <cstdio>

namespace qos {

namespace {

const char* class_name(ServiceClass k) {
  return k == ServiceClass::kPrimary ? "primary" : "overflow";
}

void append_histogram_stats(std::string& out, const char* fmt,
                            const std::string& name,
                            const LatencyHistogram& h) {
  char buf[128];
  const struct {
    const char* stat;
    double value;
  } stats[] = {
      {"count", static_cast<double>(h.count())},
      {"mean_us", h.mean_us()},
      {"p50_us", static_cast<double>(h.quantile(0.50))},
      {"p90_us", static_cast<double>(h.quantile(0.90))},
      {"p99_us", static_cast<double>(h.quantile(0.99))},
      {"p999_us", static_cast<double>(h.quantile(0.999))},
      {"max_us", static_cast<double>(h.max())},
  };
  for (const auto& s : stats) {
    std::snprintf(buf, sizeof(buf), fmt, name.c_str(), "histogram", s.stat,
                  s.value);
    out += buf;
  }
}

}  // namespace

std::string CsvExporter::events(std::span<const Event> events) {
  std::string out = "time_us,kind,seq,client,klass,server,a,b,c\n";
  char buf[192];
  for (const Event& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%lld,%s,%llu,%u,%s,%u,%lld,%lld,%lld\n",
                  static_cast<long long>(e.time), event_kind_name(e.kind),
                  static_cast<unsigned long long>(e.seq), e.client,
                  class_name(e.klass), e.server, static_cast<long long>(e.a),
                  static_cast<long long>(e.b), static_cast<long long>(e.c));
    out += buf;
  }
  return out;
}

std::string JsonExporter::events(std::span<const Event> events) {
  std::string out = "[\n";
  char buf[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"time_us\": %lld, \"kind\": \"%s\", \"seq\": %llu, "
        "\"client\": %u, \"klass\": \"%s\", \"server\": %u, "
        "\"a\": %lld, \"b\": %lld, \"c\": %lld}%s\n",
        static_cast<long long>(e.time), event_kind_name(e.kind),
        static_cast<unsigned long long>(e.seq), e.client,
        class_name(e.klass), e.server, static_cast<long long>(e.a),
        static_cast<long long>(e.b), static_cast<long long>(e.c),
        i + 1 < events.size() ? "," : "");
    out += buf;
  }
  out += "]\n";
  return out;
}

std::string CsvExporter::registry(const MetricRegistry& registry) {
  std::string out = "name,type,stat,value\n";
  char buf[128];
  for (const auto& [name, c] : registry.counters()) {
    std::snprintf(buf, sizeof(buf), "%s,counter,value,%llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : registry.gauges()) {
    std::snprintf(buf, sizeof(buf), "%s,gauge,value,%.6f\n", name.c_str(),
                  g.value());
    out += buf;
  }
  for (const auto& [name, h] : registry.histograms()) {
    append_histogram_stats(out, "%s,%s,%s,%.3f\n", name, h);
  }
  for (const auto& [name, o] : registry.occupancies()) {
    std::snprintf(buf, sizeof(buf), "%s,occupancy,mean,%.4f\n", name.c_str(),
                  o.mean());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s,occupancy,max,%lld\n", name.c_str(),
                  static_cast<long long>(o.max()));
    out += buf;
  }
  return out;
}

std::string JsonExporter::registry(const MetricRegistry& registry) {
  std::string out = "{\n";
  char buf[256];
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& [name, c] : registry.counters()) {
    sep();
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : registry.gauges()) {
    sep();
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6f", name.c_str(),
                  g.value());
    out += buf;
  }
  for (const auto& [name, h] : registry.histograms()) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "  \"%s\": {\"count\": %llu, \"mean_us\": %.3f, "
                  "\"p50_us\": %lld, \"p90_us\": %lld, \"p99_us\": %lld, "
                  "\"p999_us\": %lld, \"max_us\": %lld}",
                  name.c_str(),
                  static_cast<unsigned long long>(h.count()), h.mean_us(),
                  static_cast<long long>(h.quantile(0.50)),
                  static_cast<long long>(h.quantile(0.90)),
                  static_cast<long long>(h.quantile(0.99)),
                  static_cast<long long>(h.quantile(0.999)),
                  static_cast<long long>(h.max()));
    out += buf;
  }
  for (const auto& [name, o] : registry.occupancies()) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "  \"%s\": {\"mean\": %.4f, \"max\": %lld}", name.c_str(),
                  o.mean(), static_cast<long long>(o.max()));
    out += buf;
  }
  out += "\n}\n";
  return out;
}

}  // namespace qos
