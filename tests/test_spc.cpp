#include "trace/spc.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

TEST(Spc, ParsesWellFormedLines) {
  const std::string text =
      "0,1234,4096,r,0.000000\n"
      "1,5678,8192,W,0.125000\n";
  std::size_t skipped = 99;
  Trace t = parse_spc(text, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].client, 0u);
  EXPECT_EQ(t[0].lba, 1234u);
  EXPECT_EQ(t[0].size_blocks, 8u);  // 4096 / 512
  EXPECT_FALSE(t[0].is_write);
  EXPECT_EQ(t[1].arrival, 125'000);
  EXPECT_TRUE(t[1].is_write);
}

TEST(Spc, SkipsMalformedLines) {
  const std::string text =
      "garbage\n"
      "0,1,512,x,1.0\n"       // bad opcode
      "0,1,512,r\n"           // missing timestamp
      "0,1,512,r,2.0\n";      // good
  std::size_t skipped = 0;
  Trace t = parse_spc(text, &skipped);
  EXPECT_EQ(skipped, 3u);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].arrival, 2'000'000);
}

TEST(Spc, RoundsSizeUpToBlocks) {
  Trace t = parse_spc("0,0,513,r,0.0\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].size_blocks, 2u);
}

TEST(Spc, RoundTrip) {
  const std::string text =
      "2,100,1024,w,0.500000\n"
      "3,200,512,r,1.500000\n";
  Trace t = parse_spc(text);
  Trace back = parse_spc(to_spc(t));
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i].arrival, t[i].arrival);
    EXPECT_EQ(back[i].lba, t[i].lba);
    EXPECT_EQ(back[i].client, t[i].client);
    EXPECT_EQ(back[i].is_write, t[i].is_write);
  }
}

TEST(Spc, SortsOutOfOrderTimestamps) {
  const std::string text =
      "0,1,512,r,2.0\n"
      "0,2,512,r,1.0\n";
  Trace t = parse_spc(text);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].lba, 2u);
  EXPECT_EQ(t[1].lba, 1u);
}

TEST(Spc, EmptyInput) {
  std::size_t skipped = 0;
  EXPECT_TRUE(parse_spc("", &skipped).empty());
  EXPECT_EQ(skipped, 0u);
}

TEST(Spc, ToleratesSpacesAroundFields) {
  Trace t = parse_spc(" 0 , 42 , 512 , r , 1.0 \n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].lba, 42u);
}

// -------------------------------------------- malformed-input hardening

TEST(Spc, SkipsTruncatedLines) {
  const std::string text =
      "0\n"
      "0,1\n"
      "0,1,512\n"
      "0,1,512,r\n"
      "0,1,512,r,1.0\n";  // the only complete line
  std::size_t skipped = 0;
  Trace t = parse_spc(text, &skipped);
  EXPECT_EQ(skipped, 4u);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(Spc, SkipsNegativeTimestamps) {
  std::size_t skipped = 0;
  Trace t = parse_spc("0,1,512,r,-1.0\n0,1,512,r,1.0\n", &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].arrival, 1'000'000);
}

TEST(Spc, SkipsNonFiniteTimestamps) {
  std::size_t skipped = 0;
  Trace t = parse_spc("0,1,512,r,nan\n0,1,512,r,inf\n0,1,512,r,1.0\n",
                      &skipped);
  EXPECT_EQ(skipped, 2u);
  ASSERT_EQ(t.size(), 1u);
}

TEST(Spc, SkipsTimestampsBeyondTimeRange) {
  // Seconds value whose microsecond conversion would overflow Time.
  std::size_t skipped = 0;
  Trace t = parse_spc("0,1,512,r,1e30\n0,1,512,r,1.0\n", &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(t.size(), 1u);
}

TEST(Spc, SkipsZeroAndHugeSizes) {
  // Zero bytes would make a zero-block request (invalid per
  // Trace::validate); a size whose block count overflows 32 bits is junk.
  std::size_t skipped = 0;
  Trace t = parse_spc(
      "0,1,0,r,0.5\n"
      "0,1,99999999999999999999,r,0.5\n"
      "0,1,512,r,1.0\n",
      &skipped);
  EXPECT_EQ(skipped, 2u);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(Spc, NonMonotonicTimesYieldValidTrace) {
  // Out-of-order timestamps are legal in SPC files; the parser sorts, so
  // the result must always satisfy the simulator's validate() contract.
  Trace t = parse_spc(
      "0,1,512,r,3.0\n"
      "0,2,512,r,1.0\n"
      "0,3,512,r,2.0\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t[0].lba, 2u);
  EXPECT_EQ(t[2].lba, 1u);
}

TEST(Spc, AllLinesMalformedIsEmptyButLoadable) {
  std::size_t skipped = 0;
  Trace t = parse_spc("junk\nmore junk\n", &skipped);
  EXPECT_EQ(skipped, 2u);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.validate());
}

}  // namespace
}  // namespace qos
