// online_server — serving a bursty arrival stream through online::Shaper
// on a real wall clock.
//
// The offline facade (shape_and_run) answers "what would shaping have done
// to this trace"; this demo shows the same policy making the same decisions
// *live*: a SteadyClock Shaper with the Miser backend admits a two-state
// bursty stream at real time for about two seconds, a backend loop
// completes dispatched work at the provisioned rate, and the summary shows
// the graduated outcome — Q1 requests held to the deadline, burst overflow
// degraded to best-effort instead of dragging the tail.
//
// Runs in ~2 s with no arguments.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "online/shaper.h"
#include "trace/generator.h"
#include "util/clock.h"

using namespace qos;
using namespace qos::online;

int main() {
  // A two-state stream: calm 300 IOPS base, 1500 IOPS bursts — the shape
  // the paper decomposes.  Generated once, replayed against the wall clock.
  WorkloadSpec spec;
  spec.states = {{300, 0.7}, {1500, 0.3}};
  const Trace arrivals = generate_workload(spec, 2 * kUsPerSec, 7);

  // Provision from the base rate, not the burst peak: bursts overflow to
  // best effort by design.  500 IOPS Q1 capacity, 10 ms deadline.
  ShaperOptions options;
  options.shaping.policy = Policy::kMiser;
  options.shaping.delta = from_ms(10);
  options.cmin_iops = 500;

  SteadyClock clock;
  Shaper shaper(options, clock);
  const Time service_us = 1'600;  // ~625 IOPS backend

  std::printf("online_server: %zu arrivals over %.1f s, cmin %.0f IOPS, "
              "delta %lld ms\n",
              arrivals.size(),
              static_cast<double>(arrivals.duration()) / kUsPerSec,
              options.cmin_iops,
              static_cast<long long>(options.shaping.delta / 1'000));

  std::uint64_t deadline_met = 0, q1_done = 0;
  std::vector<std::pair<Time, DispatchCommand>> in_flight;  // (finish, cmd)

  std::size_t next = 0;
  while (next < arrivals.size() || !in_flight.empty()) {
    const Time now = clock.now();
    // Complete backend work that has finished by now.
    for (std::size_t i = 0; i < in_flight.size();) {
      if (in_flight[i].first <= now) {
        const DispatchCommand& cmd = in_flight[i].second;
        if (cmd.klass == ServiceClass::kPrimary) {
          ++q1_done;
          if (now - cmd.request.arrival <= options.shaping.delta)
            ++deadline_met;
        }
        shaper.on_completion(cmd.request, cmd.klass, cmd.server, now);
        in_flight[i] = in_flight.back();
        in_flight.pop_back();
      } else {
        ++i;
      }
    }
    // Admit every arrival whose trace instant has passed.
    while (next < arrivals.size() &&
           arrivals[next].arrival - arrivals.start_time() <= now) {
      shaper.admit(arrivals[next], now);
      ++next;
    }
    for (const DispatchCommand& cmd : shaper.poll_dispatch(now))
      in_flight.emplace_back(clock.now() + service_us, cmd);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  std::printf("admitted  Q1 %llu   Q2 %llu   shed %llu\n",
              static_cast<unsigned long long>(shaper.admitted_q1()),
              static_cast<unsigned long long>(shaper.admitted_q2()),
              static_cast<unsigned long long>(shaper.shed()));
  std::printf("Q1 deadline met: %llu / %llu (%.1f%%)\n",
              static_cast<unsigned long long>(deadline_met),
              static_cast<unsigned long long>(q1_done),
              q1_done > 0 ? 100.0 * static_cast<double>(deadline_met) /
                                static_cast<double>(q1_done)
                          : 0.0);
  std::printf("Q2 backlog at shutdown: %zu (best effort keeps no promise)\n",
              shaper.q2_backlog());
  return 0;
}
