#include "curves/analysis.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

TEST(BusyPeriods, SingleRequest) {
  // 1 request at t=0, capacity 10 IOPS => drains at 100 ms.
  auto periods = busy_periods(make_trace({0}), 10);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0].start, 0);
  EXPECT_EQ(periods[0].end, 100'000);
}

TEST(BusyPeriods, SeparatedBursts) {
  // Two bursts of 2 requests each, far apart; capacity 10 IOPS (100 ms per
  // request) => each burst drains 200 ms after it starts.
  auto periods = busy_periods(make_trace({0, 0, 1'000'000, 1'000'000}), 10);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].start, 0);
  EXPECT_EQ(periods[0].end, 200'000);
  EXPECT_EQ(periods[0].first_seq, 0);
  EXPECT_EQ(periods[0].last_seq, 1);
  EXPECT_EQ(periods[1].start, 1'000'000);
  EXPECT_EQ(periods[1].end, 1'200'000);
}

TEST(BusyPeriods, ArrivalDuringDrainExtendsPeriod) {
  // Request at 0 (drains at 100 ms) plus one at 50 ms => one busy period.
  auto periods = busy_periods(make_trace({0, 50'000}), 10);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0].end, 200'000);
}

TEST(MaxBacklog, CountsPendingAtArrivals) {
  // 3 simultaneous arrivals: backlog 3.
  EXPECT_DOUBLE_EQ(max_backlog(make_trace({0, 0, 0}), 100), 3.0);
  // Spread far apart at high capacity: backlog 1.
  EXPECT_DOUBLE_EQ(
      max_backlog(make_trace({0, 1'000'000, 2'000'000}), 100), 1.0);
}

TEST(Lemma1, NoOverloadMeansZero) {
  // 2 requests 1 s apart, C = 10, delta = 200 ms: never above SCL.
  ArrivalCurve curve(make_trace({0, 1'000'000}));
  EXPECT_EQ(lemma1_lower_bound(curve, 10, 200'000), 0);
}

TEST(Lemma1, CountsExcessOverServiceLimit) {
  // 5 simultaneous requests at t = 0; C = 10 IOPS, delta = 200 ms.
  // S(0 + delta) = 10 * 0.2 = 2 => at least ceil(5 - 2) = 3 must miss.
  ArrivalCurve curve(make_trace({0, 0, 0, 0, 0}));
  EXPECT_EQ(lemma1_lower_bound(curve, 10, 200'000), 3);
}

TEST(Lemma1, UsesWorstInstant) {
  // Burst at t=0 within limits, second burst at t=100ms pushes over.
  // C=10, delta=100ms: S(a+delta) at a=0 is 1; A(0)=1 => slack.
  // At a=100ms: A=4, S(200ms)=2 => 2 mandatory misses.
  ArrivalCurve curve(make_trace({0, 100'000, 100'000, 100'000}));
  EXPECT_EQ(lemma1_lower_bound(curve, 10, 100'000), 2);
}

TEST(Lemma1, OriginShiftsServiceCurve) {
  // Same burst, but service begins at the burst (origin = burst time).
  ArrivalCurve curve(make_trace({1'000'000, 1'000'000, 1'000'000}));
  // Origin 0: S(1s + 0.1s) = 11 => no misses.
  EXPECT_EQ(lemma1_lower_bound(curve, 10, 100'000, 0), 0);
  // Origin at the burst: S = 10 * 0.1 = 1 => 2 misses.
  EXPECT_EQ(lemma1_lower_bound(curve, 10, 100'000, 1'000'000), 2);
}

TEST(MandatoryMisses, SumsOverBusyPeriods) {
  // Two separated identical bursts of 5 at C=10, delta=200ms: 3 misses each.
  Trace t = make_trace(
      {0, 0, 0, 0, 0, 10'000'000, 10'000'000, 10'000'000, 10'000'000,
       10'000'000});
  EXPECT_EQ(mandatory_miss_lower_bound(t, 10, 200'000), 6);
}

TEST(Scl, LineValue) {
  // C = 10 IOPS, delta = 200 ms: SCL(0) = 2, SCL(1 s) = 12.
  EXPECT_DOUBLE_EQ(scl_at(10, 200'000, 0), 2.0);
  EXPECT_DOUBLE_EQ(scl_at(10, 200'000, 1'000'000), 12.0);
  // Origin shifts the busy-period start.
  EXPECT_DOUBLE_EQ(scl_at(10, 200'000, 1'000'000, 1'000'000), 2.0);
}

TEST(Scl, ViolationsFlagOverloadInstants) {
  // Paper Figure 3(a): overload where A(t) climbs above the SCL.
  // C = 10, delta = 100 ms: SCL(0) = 1.  3 arrivals at t=0 violate; after
  // they are the only ones, later slack instants do not.
  ArrivalCurve curve(make_trace({0, 0, 0, 2'000'000}));
  auto v = scl_violations(curve, 10, 100'000);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 0);
}

TEST(Scl, NoViolationsUnderCapacity) {
  ArrivalCurve curve(make_trace({0, 500'000, 1'000'000}));
  EXPECT_TRUE(scl_violations(curve, 100, 50'000).empty());
}

TEST(Scl, RemovingRequestsClearsViolation) {
  // Paper Figure 3(b): dropping the excess shifts A(t) below the SCL.
  // 3 at t=0 with SCL(0) = 1 violates; keeping 1 does not.
  ArrivalCurve before(make_trace({0, 0, 0}));
  ArrivalCurve after(make_trace({0}));
  EXPECT_FALSE(scl_violations(before, 10, 100'000).empty());
  EXPECT_TRUE(scl_violations(after, 10, 100'000).empty());
}

TEST(MandatoryMisses, ZeroWhenCapacityAmple) {
  Trace t = make_trace({0, 100'000, 200'000, 300'000});
  EXPECT_EQ(mandatory_miss_lower_bound(t, 1000, 50'000), 0);
}

}  // namespace
}  // namespace qos
