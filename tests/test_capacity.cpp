#include "core/capacity.h"

#include <gtest/gtest.h>

#include "core/rtt.h"
#include "trace/generator.h"

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

TEST(FractionGuaranteed, MatchesDecomposition) {
  Trace t = generate_poisson(500, 10 * kUsPerSec, 42);
  const double f = fraction_guaranteed(t, 300, 10'000);
  EXPECT_DOUBLE_EQ(f, rtt_decompose(t, 300, 10'000).admitted_fraction());
}

TEST(MinCapacity, ExactForKnownBurst) {
  // 10 simultaneous requests, delta = 10 ms.  Full guarantee needs
  // maxQ1 >= 10 => C >= 1000; fraction 0.5 needs maxQ1 >= 5 => C >= 500.
  Trace t = make_trace({0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(min_capacity(t, 1.0, 10'000).cmin_iops, 1000);
  EXPECT_DOUBLE_EQ(min_capacity(t, 0.5, 10'000).cmin_iops, 500);
}

TEST(MinCapacity, AchievedFractionMeetsTarget) {
  Trace t = generate_poisson(800, 20 * kUsPerSec, 7);
  for (double f : {0.9, 0.95, 0.99, 1.0}) {
    CapacityResult r = min_capacity(t, f, 10'000);
    EXPECT_GE(r.achieved_fraction, f);
  }
}

TEST(MinCapacity, IsMinimal) {
  // One IOPS less must fail the target.
  Trace t = generate_poisson(800, 20 * kUsPerSec, 11);
  CapacityResult r = min_capacity(t, 0.95, 10'000);
  ASSERT_GT(r.cmin_iops, 1);
  EXPECT_LT(fraction_guaranteed(t, r.cmin_iops - 1, 10'000), 0.95);
}

TEST(MinCapacity, MonotoneInFraction) {
  Trace t = generate_poisson(1000, 20 * kUsPerSec, 13);
  double prev = 0;
  for (double f : {0.9, 0.95, 0.99, 0.995, 0.999, 1.0}) {
    const double c = min_capacity(t, f, 10'000).cmin_iops;
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(MinCapacity, MonotoneInDeadline) {
  // Looser deadlines need no more capacity.
  Trace t = generate_poisson(1000, 20 * kUsPerSec, 17);
  double prev = 1e18;
  for (Time delta : {5'000, 10'000, 20'000, 50'000}) {
    const double c = min_capacity(t, 0.95, delta).cmin_iops;
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(MinCapacity, EmptyTraceNeedsNothing) {
  CapacityResult r = min_capacity(Trace(), 0.9, 10'000);
  EXPECT_DOUBLE_EQ(r.cmin_iops, 0);
  EXPECT_DOUBLE_EQ(r.achieved_fraction, 1.0);
}

TEST(MinCapacity, ProbeCountIsLogarithmic) {
  Trace t = generate_poisson(2000, 10 * kUsPerSec, 19);
  CapacityResult r = min_capacity(t, 1.0, 5'000);
  // Doubling phase + binary search: comfortably under 64 evaluations.
  EXPECT_LE(r.probes, 64);
  EXPECT_GT(r.probes, 1);
}

TEST(OverflowHeadroom, IsReciprocalOfDelta) {
  EXPECT_DOUBLE_EQ(overflow_headroom_iops(from_ms(50)), 20.0);
  EXPECT_DOUBLE_EQ(overflow_headroom_iops(from_ms(10)), 100.0);
  EXPECT_DOUBLE_EQ(overflow_headroom_iops(from_ms(5)), 200.0);
}

TEST(CapacityProfile, SortedAndConsistentWithPointQueries) {
  Trace t = generate_poisson(600, 20 * kUsPerSec, 23);
  auto curve = capacity_profile(t, 10'000, {0.99, 0.9, 1.0});
  ASSERT_EQ(curve.size(), 3u);
  // Fractions sorted ascending, capacities non-decreasing.
  EXPECT_DOUBLE_EQ(curve[0].fraction, 0.9);
  EXPECT_DOUBLE_EQ(curve[2].fraction, 1.0);
  EXPECT_LE(curve[0].cmin_iops, curve[1].cmin_iops);
  EXPECT_LE(curve[1].cmin_iops, curve[2].cmin_iops);
  for (const auto& point : curve)
    EXPECT_DOUBLE_EQ(point.cmin_iops,
                     min_capacity(t, point.fraction, 10'000).cmin_iops);
}

TEST(CapacityProfile, DefaultFractionsMatchPaperTable) {
  Trace t = generate_poisson(300, 5 * kUsPerSec, 29);
  auto curve = capacity_profile(t, 20'000);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_DOUBLE_EQ(curve.front().fraction, 0.90);
  EXPECT_DOUBLE_EQ(curve.back().fraction, 1.0);
}

TEST(MinCapacity, HintedSearchReturnsUnhintedAnswer) {
  // Warm starts change probe counts, never answers.
  Trace t = generate_poisson(900, 20 * kUsPerSec, 31);
  const CapacityResult plain = min_capacity(t, 0.95, 10'000);

  CapacityHint bracket;
  bracket.infeasible_below = static_cast<std::int64_t>(plain.cmin_iops) - 1;
  bracket.feasible_at = static_cast<std::int64_t>(plain.cmin_iops);
  const CapacityResult tight = min_capacity(t, 0.95, 10'000, bracket);
  EXPECT_DOUBLE_EQ(tight.cmin_iops, plain.cmin_iops);
  EXPECT_DOUBLE_EQ(tight.achieved_fraction, plain.achieved_fraction);
  // A closed one-IOPS bracket needs at most a couple of confirming probes.
  EXPECT_LE(tight.probes, 2);

  CapacityHint low_only;
  low_only.infeasible_below = static_cast<std::int64_t>(plain.cmin_iops) / 2;
  EXPECT_DOUBLE_EQ(min_capacity(t, 0.95, 10'000, low_only).cmin_iops,
                   plain.cmin_iops);

  // A conservative (loose) hint must also be harmless.
  CapacityHint loose;
  loose.feasible_at = static_cast<std::int64_t>(plain.cmin_iops) * 4;
  EXPECT_DOUBLE_EQ(min_capacity(t, 0.95, 10'000, loose).cmin_iops,
                   plain.cmin_iops);
}

TEST(CapacityProfile, WarmStartSpendsFewerProbesThanIndependentSearches) {
  // The profile chains each fraction's answer into the next search's lower
  // bracket (Cmin is monotone in f); the regression guard is that the
  // chained profile probes strictly less than six cold searches.
  Trace t = generate_poisson(800, 20 * kUsPerSec, 37);
  int independent_probes = 0;
  for (double f : {0.90, 0.95, 0.99, 0.995, 0.999, 1.0})
    independent_probes += min_capacity(t, f, 10'000).probes;

  // Re-measure the chained walk the way capacity_profile performs it.
  int profile_probes = 0;
  CapacityHint hint;
  for (double f : {0.90, 0.95, 0.99, 0.995, 0.999, 1.0}) {
    const CapacityResult r = min_capacity(t, f, 10'000, hint);
    hint.infeasible_below = static_cast<std::int64_t>(r.cmin_iops) - 1;
    profile_probes += r.probes;
  }
  EXPECT_LT(profile_probes, independent_probes);

  // And the chained answers equal the cold ones.
  const auto curve = capacity_profile(t, 10'000);
  for (const auto& point : curve)
    EXPECT_DOUBLE_EQ(point.cmin_iops,
                     min_capacity(t, point.fraction, 10'000).cmin_iops);
}

TEST(MinCapacity, VerifyAcceptsTruthfulHints) {
  Trace t = generate_poisson(900, 20 * kUsPerSec, 41);
  const CapacityResult plain = min_capacity(t, 0.95, 10'000);

  CapacityHint hint;
  hint.infeasible_below = static_cast<std::int64_t>(plain.cmin_iops) - 1;
  hint.feasible_at = static_cast<std::int64_t>(plain.cmin_iops);
  hint.verify = true;
  const CapacityResult checked = min_capacity(t, 0.95, 10'000, hint);
  EXPECT_DOUBLE_EQ(checked.cmin_iops, plain.cmin_iops);
  // Verification probes run outside the census: probe counts match the
  // unverified hinted search exactly.
  hint.verify = false;
  EXPECT_EQ(checked.probes, min_capacity(t, 0.95, 10'000, hint).probes);
}

TEST(MinCapacity, VerifyAbortsOnLyingInfeasibleBelow) {
  // Claiming the true Cmin (a feasible capacity) is infeasible would make
  // the unverified search return a wrong answer; verify mode aborts instead.
  Trace t = generate_poisson(900, 20 * kUsPerSec, 43);
  const CapacityResult plain = min_capacity(t, 0.95, 10'000);
  CapacityHint lie;
  lie.infeasible_below = static_cast<std::int64_t>(plain.cmin_iops);
  lie.verify = true;
  EXPECT_DEATH((void)min_capacity(t, 0.95, 10'000, lie), "Invariant failed");
}

TEST(MinCapacity, VerifyAbortsOnLyingFeasibleAt) {
  Trace t = generate_poisson(900, 20 * kUsPerSec, 47);
  const CapacityResult plain = min_capacity(t, 0.95, 10'000);
  CapacityHint lie;
  lie.feasible_at = static_cast<std::int64_t>(plain.cmin_iops) - 1;
  lie.verify = true;
  EXPECT_DEATH((void)min_capacity(t, 0.95, 10'000, lie), "Invariant failed");
}

TEST(MinCapacity, FullGuaranteeCoversWorstBurst) {
  // A trace with one giant burst: Cmin(100%) is set by the burst, while
  // Cmin(90%) is set by the smooth part — the paper's knee.  (Knee ratio
  // checked quantitatively in integration tests.)
  std::vector<Request> reqs;
  for (int i = 0; i < 90; ++i) reqs.push_back(Request{.arrival = i * 100'000});
  for (int i = 0; i < 10; ++i)
    reqs.push_back(Request{.arrival = 4'500'000 + i * 10});
  Trace t(std::move(reqs));
  const double c100 = min_capacity(t, 1.0, 10'000).cmin_iops;
  const double c90 = min_capacity(t, 0.9, 10'000).cmin_iops;
  EXPECT_GT(c100, 3 * c90);
}

}  // namespace
}  // namespace qos
