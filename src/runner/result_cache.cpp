#include "runner/result_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace qos {

namespace fs = std::filesystem;

ResultCache::ResultCache(Config config) : config_(std::move(config)) {
  QOS_EXPECTS(config_.memory_entries > 0);
}

std::optional<std::string> ResultCache::get(const Digest& key) {
  std::lock_guard lock(mutex_);
  if (auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++stats_.hits;
    ++stats_.memory_hits;
    return it->second->second;
  }
  if (auto disk = disk_get(key)) {
    insert_memory(key, *disk);  // promote
    ++stats_.hits;
    ++stats_.disk_hits;
    return disk;
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::put(const Digest& key, const std::string& value) {
  std::lock_guard lock(mutex_);
  ++stats_.stores;
  insert_memory(key, value);
  if (!config_.disk_dir.empty()) disk_put(key, value);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void ResultCache::clear_memory() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

void ResultCache::insert_memory(const Digest& key, const std::string& value) {
  if (auto it = index_.find(key); it != index_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, value);
  index_[key] = lru_.begin();
  while (lru_.size() > config_.memory_entries) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::string ResultCache::disk_path(const Digest& key) const {
  return config_.disk_dir + "/" + key.to_hex() + ".qosc";
}

namespace {

// Disk entries are framed "qosc1 <size> <fnv64(value)>\n<value>" so a torn
// or bit-flipped file fails validation and reads as a miss — the values are
// opaque to the cache, so this is the only integrity check it can do.
std::uint64_t payload_checksum(const std::string& value) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : value) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::optional<std::string> ResultCache::disk_get(const Digest& key) {
  if (config_.disk_dir.empty()) return std::nullopt;
  std::ifstream in(disk_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::string magic;
  std::size_t size = 0;
  std::uint64_t checksum = 0;
  if (!(in >> magic >> size >> checksum) || magic != "qosc1")
    return std::nullopt;
  if (in.get() != '\n') return std::nullopt;
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) return std::nullopt;
  if (payload_checksum(value) != checksum) return std::nullopt;
  return value;
}

void ResultCache::disk_put(const Digest& key, const std::string& value) {
  std::error_code ec;
  fs::create_directories(config_.disk_dir, ec);
  if (ec) return;  // disk tier is best-effort; memory tier already has it
  const std::string final_path = disk_path(key);
  const std::string tmp_path =
      final_path + ".tmp." +
      std::to_string(reinterpret_cast<std::uintptr_t>(&value));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << "qosc1 " << value.size() << ' ' << payload_checksum(value) << '\n';
    out.write(value.data(), static_cast<std::streamsize>(value.size()));
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

}  // namespace qos
