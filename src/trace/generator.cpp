#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qos {
namespace {

/// Stateful LBA/size/op assignment shared by all generators.
class AddressAssigner {
 public:
  AddressAssigner(const AddressSpec& spec, Rng rng)
      : spec_(spec), rng_(rng) {}

  void fill(Request& r) {
    if (rng_.next_double() < spec_.sequential_prob && last_lba_ != 0) {
      r.lba = last_lba_ + spec_.size_blocks;
    } else {
      r.lba = static_cast<std::uint64_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(spec_.lba_max)));
    }
    last_lba_ = r.lba;
    r.size_blocks = spec_.size_blocks;
    r.is_write = rng_.next_double() < spec_.write_fraction;
  }

 private:
  AddressSpec spec_;
  Rng rng_;
  std::uint64_t last_lba_ = 0;
};

std::uint64_t hash_node(std::uint64_t seed, std::uint64_t node) {
  // SplitMix64-style mix of (seed, node) for per-node cascade orientation.
  std::uint64_t z = seed ^ (node * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// All generators funnel through here so every synthetic trace is checked
// against the central invariants (a zero size_blocks in an AddressSpec
// would otherwise only surface at simulate() entry).
Trace finalize(std::vector<Request> out) {
  Trace trace(std::move(out));
  QOS_ENSURES(trace.validate());
  return trace;
}

}  // namespace

Trace generate_workload(const WorkloadSpec& spec, Time duration,
                        std::uint64_t seed) {
  QOS_EXPECTS(!spec.states.empty());
  QOS_EXPECTS(duration > 0);
  const std::size_t n_states = spec.states.size();
  QOS_EXPECTS(spec.transition.empty() ||
              spec.transition.size() == n_states * n_states);

  Rng rng(seed);
  Rng state_rng = rng.fork();
  Rng batch_rng = rng.fork();
  AddressAssigner addr(spec.addresses, rng.fork());

  std::vector<Request> out;

  // --- MMPP base process ---
  std::size_t state = 0;
  double t_sec = 0;
  const double horizon_sec = to_sec(duration);
  while (t_sec < horizon_sec) {
    const MmppState& st = spec.states[state];
    const double dwell = state_rng.exponential(st.mean_dwell_sec);
    const double end_sec = std::min(horizon_sec, t_sec + dwell);
    if (st.rate_iops > 0) {
      double a = t_sec;
      const double mean_gap = 1.0 / st.rate_iops;
      while (true) {
        a += state_rng.exponential(mean_gap);
        if (a >= end_sec) break;
        Request r;
        r.arrival = from_sec(a);
        addr.fill(r);
        out.push_back(r);
      }
    }
    t_sec = end_sec;
    // Transition.
    if (spec.transition.empty()) {
      if (n_states > 1) {
        std::size_t next = static_cast<std::size_t>(
            state_rng.uniform_int(0, static_cast<std::int64_t>(n_states) - 2));
        if (next >= state) ++next;
        state = next;
      }
    } else {
      const double u = state_rng.next_double();
      double acc = 0;
      std::size_t next = n_states - 1;
      for (std::size_t j = 0; j < n_states; ++j) {
        acc += spec.transition[state * n_states + j];
        if (u < acc) {
          next = j;
          break;
        }
      }
      state = next;
    }
  }

  // --- Batch overlay ---
  if (spec.batches.batches_per_sec > 0) {
    double b = 0;
    const double mean_gap = 1.0 / spec.batches.batches_per_sec;
    while (true) {
      b += batch_rng.exponential(mean_gap);
      if (b >= horizon_sec) break;
      double size = static_cast<double>(
          batch_rng.geometric(1.0 / spec.batches.mean_size));
      if (spec.batches.giant_prob > 0 &&
          batch_rng.next_double() < spec.batches.giant_prob) {
        size *= spec.batches.giant_factor;
      }
      const Time base = from_sec(b);
      std::int64_t count = static_cast<std::int64_t>(size);
      if (spec.batches.max_size > 0 && count > spec.batches.max_size)
        count = spec.batches.max_size;
      for (std::int64_t i = 0; i < count; ++i) {
        Request r;
        r.arrival =
            base + batch_rng.uniform_int(0, spec.batches.spread_us);
        if (r.arrival >= duration) continue;
        addr.fill(r);
        out.push_back(r);
      }
    }
  }

  return finalize(std::move(out));
}

Trace generate_poisson(double rate_iops, Time duration, std::uint64_t seed,
                       const AddressSpec& addr_spec) {
  QOS_EXPECTS(rate_iops > 0 && duration > 0);
  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  std::vector<Request> out;
  const double horizon = to_sec(duration);
  const double mean_gap = 1.0 / rate_iops;
  double t = 0;
  while (true) {
    t += rng.exponential(mean_gap);
    if (t >= horizon) break;
    Request r;
    r.arrival = from_sec(t);
    addr.fill(r);
    out.push_back(r);
  }
  return finalize(std::move(out));
}

Trace generate_bmodel(double mean_rate_iops, double b, int levels,
                      Time duration, std::uint64_t seed,
                      const AddressSpec& addr_spec) {
  QOS_EXPECTS(mean_rate_iops > 0 && duration > 0);
  QOS_EXPECTS(b >= 0.5 && b < 1.0);
  QOS_EXPECTS(levels >= 1 && levels <= 40);
  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  const std::int64_t n =
      static_cast<std::int64_t>(mean_rate_iops * to_sec(duration));
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Walk the cascade: at each node, a hashed orientation bit decides which
    // child carries probability mass b.  All requests share orientations
    // (per-seed), which is what concentrates mass into bursts.
    std::uint64_t node = 1;
    Time lo = 0;
    Time width = duration;
    for (int level = 0; level < levels && width > 1; ++level) {
      const bool left_heavy = hash_node(seed, node) & 1;
      const double p_left = left_heavy ? b : 1.0 - b;
      const bool go_left = rng.next_double() < p_left;
      width = width / 2;
      if (!go_left) lo += width;
      node = node * 2 + (go_left ? 0 : 1);
    }
    Request r;
    r.arrival = lo + (width > 1 ? rng.uniform_int(0, width - 1) : 0);
    addr.fill(r);
    out.push_back(r);
  }
  return finalize(std::move(out));
}

Trace generate_pareto_onoff(double on_rate_iops, double alpha_on,
                            double xm_on_sec, double mean_off_sec,
                            Time duration, std::uint64_t seed,
                            const AddressSpec& addr_spec) {
  QOS_EXPECTS(on_rate_iops > 0 && duration > 0);
  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  std::vector<Request> out;
  const double horizon = to_sec(duration);
  double t = 0;
  bool on = true;
  const double mean_gap = 1.0 / on_rate_iops;
  while (t < horizon) {
    if (on) {
      const double end = std::min(horizon, t + rng.pareto(alpha_on, xm_on_sec));
      double a = t;
      while (true) {
        a += rng.exponential(mean_gap);
        if (a >= end) break;
        Request r;
        r.arrival = from_sec(a);
        addr.fill(r);
        out.push_back(r);
      }
      t = end;
    } else {
      t += rng.exponential(mean_off_sec);
    }
    on = !on;
  }
  return finalize(std::move(out));
}

RegimeSchedule::RegimeSchedule(std::vector<RegimePhase> phases) {
  std::sort(phases.begin(), phases.end(),
            [](const RegimePhase& a, const RegimePhase& b) {
              return a.begin < b.begin;
            });
  phases_ = std::move(phases);
  QOS_EXPECTS(validate());
}

RegimeSchedule& RegimeSchedule::phase(Time begin, double rate_iops,
                                      BatchSpec batches) {
  phases_.push_back({begin, rate_iops, batches});
  std::sort(phases_.begin(), phases_.end(),
            [](const RegimePhase& a, const RegimePhase& b) {
              return a.begin < b.begin;
            });
  QOS_EXPECTS(validate());
  return *this;
}

const RegimePhase* RegimeSchedule::active_at(Time t) const {
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Time value, const RegimePhase& p) { return value < p.begin; });
  if (it == phases_.begin()) return nullptr;
  return &*std::prev(it);
}

bool RegimeSchedule::validate() const {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const RegimePhase& p = phases_[i];
    if (p.rate_iops < 0) return false;
    if (i == 0 && p.begin != 0) return false;
    if (i > 0 && p.begin <= phases_[i - 1].begin) return false;
  }
  return true;
}

Trace generate_regime_switching(const RegimeSchedule& schedule, Time duration,
                                std::uint64_t seed,
                                const AddressSpec& addr_spec) {
  QOS_EXPECTS(!schedule.empty());
  QOS_EXPECTS(schedule.validate());
  QOS_EXPECTS(duration > 0);

  Rng rng(seed);
  AddressAssigner addr(addr_spec, rng.fork());
  std::vector<Request> out;

  const std::vector<RegimePhase>& phases = schedule.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const RegimePhase& ph = phases[i];
    if (ph.begin >= duration) break;
    const Time end = i + 1 < phases.size()
                         ? std::min(phases[i + 1].begin, duration)
                         : duration;
    // Per-phase streams keyed on (seed, phase index): phase content is a
    // function of its own window alone, never of how earlier phases drew.
    Rng base_rng(hash_node(seed, 2 * i + 1));
    Rng batch_rng(hash_node(seed, 2 * i + 2));
    const double begin_sec = to_sec(ph.begin);
    const double end_sec = to_sec(end);

    if (ph.rate_iops > 0) {
      double t = begin_sec;
      const double mean_gap = 1.0 / ph.rate_iops;
      while (true) {
        t += base_rng.exponential(mean_gap);
        if (t >= end_sec) break;
        Request r;
        r.arrival = from_sec(t);
        addr.fill(r);
        out.push_back(r);
      }
    }

    if (ph.batches.batches_per_sec > 0) {
      double b = begin_sec;
      const double mean_gap = 1.0 / ph.batches.batches_per_sec;
      while (true) {
        b += batch_rng.exponential(mean_gap);
        if (b >= end_sec) break;
        double size = static_cast<double>(
            batch_rng.geometric(1.0 / ph.batches.mean_size));
        if (ph.batches.giant_prob > 0 &&
            batch_rng.next_double() < ph.batches.giant_prob) {
          size *= ph.batches.giant_factor;
        }
        const Time base = from_sec(b);
        std::int64_t count = static_cast<std::int64_t>(size);
        if (ph.batches.max_size > 0 && count > ph.batches.max_size)
          count = ph.batches.max_size;
        for (std::int64_t j = 0; j < count; ++j) {
          Request r;
          r.arrival = base + batch_rng.uniform_int(0, ph.batches.spread_us);
          // Clip the cluster at the phase boundary so a shift is sharp.
          if (r.arrival >= end) continue;
          addr.fill(r);
          out.push_back(r);
        }
      }
    }
  }

  return finalize(std::move(out));
}

}  // namespace qos
