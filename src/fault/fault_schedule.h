// Deterministic fault-injection schedules.
//
// The paper's guarantees assume the provisioned capacity C is actually
// delivered; real arrays dip below it (RAID rebuilds, scrubs, cache-miss
// storms).  A FaultySchedule is a declarative, fully deterministic list of
// windows in simulated time during which a server misbehaves — capacity
// brownouts, full stalls, per-request latency spikes.  FaultyServer applies
// a schedule to any Server; the chaos harness (fault/chaos.h) sweeps
// schedules against recombination policies.  Random schedules are seeded
// through util/rng so every chaos run is replayable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace qos {

enum class FaultKind : std::uint8_t {
  kCapacityLoss = 0,  ///< server delivers (1 - severity) of its rate
  kStall,             ///< server delivers nothing until the window closes
  kLatencySpike,      ///< every service started in the window is lengthened
};

const char* fault_kind_name(FaultKind k);

/// One fault window [begin, end).  `severity` is kind-specific: for
/// kCapacityLoss the fraction of capacity lost in [0, 1); for kLatencySpike
/// the extra service time in microseconds; ignored for kStall.
struct FaultWindow {
  Time begin = 0;
  Time end = 0;
  FaultKind kind = FaultKind::kCapacityLoss;
  double severity = 0;

  Time duration() const { return end - begin; }
  bool contains(Time t) const { return t >= begin && t < end; }
  bool empty() const { return begin >= end; }
};

/// Parameters for FaultySchedule::random.
struct RandomFaultSpec {
  int count = 4;                      ///< windows to generate
  Time horizon = 60 * kUsPerSec;      ///< windows fall within [0, horizon)
  Time min_duration = kUsPerSec;      ///< per-window duration bounds
  Time max_duration = 5 * kUsPerSec;
  double min_severity = 0.1;          ///< capacity-loss fraction bounds
  double max_severity = 0.5;
  double stall_prob = 0.1;            ///< P(window is a kStall)
  double spike_prob = 0.2;            ///< P(window is a kLatencySpike)
  Time spike_extra_us = 5'000;        ///< severity used for spike windows
};

/// An ordered, non-overlapping set of fault windows.  Empty schedules are
/// valid and mean "no faults": FaultyServer with an empty schedule is
/// behaviourally identical to the server it wraps (tests assert this
/// bit-for-bit).
class FaultySchedule {
 public:
  FaultySchedule() = default;

  /// Takes windows in arbitrary order; sorts by begin and drops empty
  /// (zero-length) windows.  The result must validate().
  explicit FaultySchedule(std::vector<FaultWindow> windows);

  /// Fluent builders, chainable: schedule.brownout(...).stall(...).
  FaultySchedule& brownout(Time begin, Time end, double capacity_loss);
  FaultySchedule& stall(Time begin, Time end);
  FaultySchedule& latency_spike(Time begin, Time end, Time extra_us);

  /// Deterministic random schedule: same (spec, seed) => same windows.
  /// Windows are placed left to right with at least one tick between them,
  /// so the result always validates.
  static FaultySchedule random(const RandomFaultSpec& spec,
                               std::uint64_t seed);

  /// Same windows translated by `offset` (may be negative).  Windows pushed
  /// entirely before t=0 are dropped; one straddling 0 is clipped to start
  /// at 0.  Lets a schedule authored relative to a regime shift be placed at
  /// the shift's absolute time.
  FaultySchedule shifted(Time offset) const;

  /// Union of two schedules.  The combined window set must still be
  /// non-overlapping (it is QOS_EXPECTS-checked); compose chaos windows with
  /// regime-aligned windows that were authored not to collide.
  static FaultySchedule merged(const FaultySchedule& a,
                               const FaultySchedule& b);

  /// Window active at instant `t`, or nullptr.  O(log n).
  const FaultWindow* active_at(Time t) const;

  /// True when windows are sorted, non-empty per window, non-overlapping,
  /// and severities are in range for their kind.
  bool validate() const;

  bool empty() const { return windows_.empty(); }
  std::size_t size() const { return windows_.size(); }
  const std::vector<FaultWindow>& windows() const { return windows_; }

  /// End of the last window; 0 for an empty schedule.
  Time horizon() const {
    return windows_.empty() ? 0 : windows_.back().end;
  }

 private:
  void insert(FaultWindow w);

  std::vector<FaultWindow> windows_;  ///< sorted by begin, non-overlapping
};

}  // namespace qos
