#include "online/shaper.h"

#include <algorithm>

#include "fault/degraded_scheduler.h"
#include "util/check.h"

namespace qos::online {

const char* admit_name(Admit a) {
  switch (a) {
    case Admit::kQ1: return "Q1";
    case Admit::kQ2: return "Q2";
    case Admit::kShed: return "shed";
  }
  QOS_CHECK(false);
}

// Interposes between the scheduler and the configured downstream sink: the
// scheduler's kAdmit / kReject / kDemote emission *is* the admission
// decision, so recording it here turns the existing event stream into
// admit()'s return value without forking any scheduler logic.  Everything
// (recorded or not) is forwarded downstream, so observers see the exact
// stream shape_and_run produces.
class Shaper::DecisionCapture final : public EventSink {
 public:
  explicit DecisionCapture(EventSink* downstream) : downstream_(downstream) {}

  void on_event(const Event& e) override {
    switch (e.kind) {
      case EventKind::kAdmit:
        last_ = Decision{.seq = e.seq,
                         .admit = Admit::kQ1,
                         .depth = e.a,
                         .max_q1 = e.b};
        break;
      case EventKind::kReject:
        last_ = Decision{.seq = e.seq,
                         .admit = Admit::kQ2,
                         .depth = e.a,
                         .max_q1 = e.b};
        break;
      case EventKind::kDemote:
        last_ = Decision{.seq = e.seq,
                         .admit = Admit::kQ2,
                         .demoted = true,
                         .depth = e.a,
                         .max_q1 = e.b};
        break;
      default:
        break;
    }
    if (downstream_ != nullptr) downstream_->on_event(e);
  }

  const Decision& last() const { return last_; }

 private:
  EventSink* downstream_;
  Decision last_;
};

Shaper::Shaper(const ShaperOptions& options, Clock& clock)
    : options_(options), clock_(&clock) {
  QOS_EXPECTS(options_.cmin_iops > 0 ||
              options_.make_custom_scheduler != nullptr);
  QOS_EXPECTS(options_.shaping.delta > 0);
  options_.shaping.wire_sinks();
  capture_ =
      std::make_unique<DecisionCapture>(options_.shaping.effective_sink());
  if (options_.make_custom_scheduler != nullptr) {
    scheduler_ = options_.make_custom_scheduler();
    QOS_CHECK(scheduler_ != nullptr);
  } else if (options_.use_degraded_admission) {
    const double server_iops =
        options_.server_iops > 0
            ? options_.server_iops
            : options_.cmin_iops + options_.shaping.resolved_headroom_iops();
    scheduler_ = std::make_unique<DegradedRttScheduler>(
        options_.cmin_iops, options_.shaping.delta, server_iops,
        options_.degraded);
  } else {
    scheduler_ = make_scheduler(options_.shaping, options_.cmin_iops);
  }
  // The capture sink must see the scheduler's admission events even when
  // the caller attached no observability; re-attach unconditionally (the
  // capture chains to the configured downstream, so nothing is lost).
  scheduler_->attach_observability(capture_.get(), options_.shaping.registry);
  // kArrival / kDispatch / kCompletion are the engine's own events (the
  // simulator emits them outside the scheduler); they go straight
  // downstream, exactly as simulate() sends them.
  probe_ = Probe(options_.shaping.effective_sink());
  idle_.resize(static_cast<std::size_t>(scheduler_->server_count()));
  for (std::size_t s = 0; s < idle_.size(); ++s)
    idle_[s] = static_cast<int>(s);
}

Shaper::~Shaper() = default;

Decision Shaper::admit_locked(const Request& r, Time now) {
  // Shed before entering the scheduler: a bounded best-effort queue is the
  // online-only policy knob (the simulator never drops — Q2 is unbounded
  // there), so it must act before the shared algorithm, not inside it.
  if (options_.max_q2_depth > 0 && q2_backlog_ >= options_.max_q2_depth &&
      !scheduler_->arrival_joins_primary(now)) {
    ++shed_;
    return Decision{.seq = r.seq, .admit = Admit::kShed};
  }
  Request stamped = r;
  stamped.arrival = now;
  if (probe_) {
    probe_.emit({.time = now,
                 .seq = stamped.seq,
                 .client = stamped.client,
                 .kind = EventKind::kArrival});
  }
  scheduler_->on_arrival(stamped, now);
  Decision d = capture_->last();
  QOS_CHECK(d.seq == stamped.seq);  // every on_arrival emits its decision
  if (d.admit == Admit::kQ1) {
    d.deadline = now + options_.shaping.delta;
    ++admitted_q1_;
  } else {
    ++admitted_q2_;
    ++q2_backlog_;
    if (d.demoted) ++demotions_;
  }
  return d;
}

Decision Shaper::admit(const Request& r, Time now) {
  std::lock_guard<std::mutex> lock(mutex_);
  return admit_locked(r, now);
}

Decision Shaper::admit(const Request& r) {
  // The clock is read *inside* the lock: with several threads stamping
  // their own "now" before acquiring it, the scheduler could observe
  // decreasing arrival times — a contract violation.  Under the lock the
  // monotone clock guarantees ordered timestamps.
  std::lock_guard<std::mutex> lock(mutex_);
  return admit_locked(r, clock_->now());
}

std::vector<Decision> Shaper::admit_batch(std::span<const Request> batch,
                                          Time now) {
  std::vector<Decision> decisions;
  decisions.reserve(batch.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Request& r : batch) decisions.push_back(admit_locked(r, now));
  return decisions;
}

std::vector<Decision> Shaper::admit_batch(std::span<const Request> batch) {
  std::vector<Decision> decisions;
  decisions.reserve(batch.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const Time now = clock_->now();
  for (const Request& r : batch) decisions.push_back(admit_locked(r, now));
  return decisions;
}

void Shaper::poll_dispatch_locked(Time now,
                                  std::vector<DispatchCommand>& out) {
  // Same fixed point as the simulator's fill_servers: offer work to every
  // idle backend (ascending) until no backend accepts — a dispatch can
  // change scheduler state (Miser slack), so one pass is not enough.  The
  // offer sequence on the scheduler is identical, which the replay
  // differential depends on.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t k = 0; k < idle_.size();) {
      const int s = idle_[k];
      auto d = scheduler_->next_for(s, now);
      if (!d) {
        ++k;
        continue;
      }
      idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(k));
      ++busy_;
      if (d->klass == ServiceClass::kOverflow) {
        QOS_CHECK(q2_backlog_ > 0);
        --q2_backlog_;
      }
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = d->request.seq,
                     .a = now - d->request.arrival,
                     .client = d->request.client,
                     .kind = EventKind::kDispatch,
                     .klass = d->klass,
                     .server = static_cast<std::uint8_t>(s)});
      }
      out.push_back(DispatchCommand{d->request, d->klass, s});
      progress = true;
    }
  }
}

std::vector<DispatchCommand> Shaper::poll_dispatch(Time now) {
  std::vector<DispatchCommand> out;
  std::lock_guard<std::mutex> lock(mutex_);
  poll_dispatch_locked(now, out);
  return out;
}

std::vector<DispatchCommand> Shaper::poll_dispatch() {
  std::vector<DispatchCommand> out;
  std::lock_guard<std::mutex> lock(mutex_);
  poll_dispatch_locked(clock_->now(), out);
  return out;
}

void Shaper::on_completion(const Request& r, ServiceClass klass, int server,
                           Time now) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_completion_locked(r, klass, server, now);
}

void Shaper::on_completion_locked(const Request& r, ServiceClass klass,
                                  int server, Time now) {
  QOS_EXPECTS(server >= 0 && server < scheduler_->server_count());
  QOS_EXPECTS(!std::binary_search(idle_.begin(), idle_.end(), server));
  if (probe_) {
    probe_.emit({.time = now,
                 .seq = r.seq,
                 .a = now - r.arrival,
                 .client = r.client,
                 .kind = EventKind::kCompletion,
                 .klass = klass,
                 .server = static_cast<std::uint8_t>(server)});
  }
  idle_.insert(std::lower_bound(idle_.begin(), idle_.end(), server), server);
  --busy_;
  scheduler_->on_complete(r, klass, server, now);
}

void Shaper::on_completion(const Request& r, ServiceClass klass,
                           int server) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_completion_locked(r, klass, server, clock_->now());
}

void Shaper::reconfigure(const std::function<void(Scheduler&, Time)>& fn) {
  QOS_EXPECTS(fn != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  fn(*scheduler_, clock_->now());
}

int Shaper::server_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->server_count();
}

int Shaper::busy_servers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_;
}

std::size_t Shaper::q2_backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return q2_backlog_;
}

std::uint64_t Shaper::admitted_q1() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_q1_;
}

std::uint64_t Shaper::admitted_q2() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_q2_;
}

std::uint64_t Shaper::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::uint64_t Shaper::demotions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return demotions_;
}

EventSink* Shaper::event_sink() const {
  return options_.shaping.effective_sink();
}

}  // namespace qos::online
