# Empty dependencies file for graduated_sla.
# This may be replaced when dependencies are built.
