// QosController — the closed-loop global capacity re-provisioner.
//
// PRs 2–6 built local reactions: DegradedRtt tightens one tenant's admission
// when its server browns out, SlaBreachDetector says *that* a tenant's tail
// fell below target.  Neither can move capacity between tenants.  The
// controller closes the loop globally (following the software-defined QoS
// control approach of PAPERS.md): it watches per-tenant arrivals and
// breach/recover events, and at each epoch re-solves every tenant's demand
// Cmin over a sliding window of its recent arrivals, then redistributes the
// (health-scaled) capacity budget toward the tenants whose tail actually
// needs it.
//
// Stability guardrails, in the order they are applied:
//   * unstable-window fallback — a tenant whose demand window holds fewer
//     than `min_window_arrivals` arrivals keeps its previous demand estimate
//     instead of re-solving on noise;
//   * breach boost — a tenant currently in SLA breach asks for
//     `breach_boost` × its solved demand (the windowed Cmin is what the
//     *admitted* tail needed; a breached tenant needs headroom above it);
//   * per-tenant min/max — shares never fall below `min_share_iops` nor rise
//     above `max_share_fraction` of the budget, so no tenant is starved or
//     monopolises;
//   * proportional scale-down — when desires oversubscribe the budget all
//     are scaled by budget/Σdesired (then re-floored), so relative need is
//     preserved;
//   * bounded step — each epoch moves a share at most
//     `step_fraction` × current (≥ 1 IOPS), so one noisy window cannot slam
//     the allocation;
//   * hysteresis — when no breach state changed and every move is below
//     `hysteresis` × current, the epoch is skipped entirely (re-provisioning
//     has real cost: admission bounds re-quantise);
//   * last-good fallback — a re-solve producing a non-finite or non-positive
//     demand abandons the epoch and keeps the last applied plan.
//
// Determinism contract: run_epoch is a pure function of (config, observed
// event history, health) — it never reads clocks or random state — and the
// per-tenant demand solves are fanned out with ThreadPool::parallel_map,
// whose results land by index.  The allocation is therefore bit-identical
// across thread counts and (because min_capacity_cached hits return stored
// results bit-for-bit) across cold/warm cache states.  NOTE: the pool is
// used from inside run_epoch, so callers already executing on a ThreadPool
// (e.g. a sweep cell) must pass pool = nullptr — ThreadPool is not
// reentrant.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/event.h"
#include "runner/result_cache.h"
#include "runner/thread_pool.h"
#include "util/time.h"

namespace qos {

struct ControllerConfig {
  double fraction = 0.95;          ///< per-tenant QoS target for demand solves
  Time delta = from_ms(10);        ///< response-time bound
  Time epoch = 2 * kUsPerSec;      ///< re-provisioning period
  Time demand_window = 4 * kUsPerSec;  ///< arrival lookback per tenant
  std::size_t min_window_arrivals = 16;  ///< below this: keep old demand
  double min_share_iops = 1.0;     ///< per-tenant floor
  double max_share_fraction = 0.5; ///< per-tenant cap as fraction of budget
  double step_fraction = 0.25;     ///< max per-epoch move, fraction of current
  double hysteresis = 0.05;        ///< skip epoch when all moves are smaller
  double breach_boost = 1.25;      ///< demand multiplier for breached tenants
};

struct ControllerStats {
  std::uint64_t epochs = 0;        ///< run_epoch calls
  std::uint64_t applied = 0;       ///< epochs that changed the allocation
  std::uint64_t skipped = 0;       ///< epochs suppressed by hysteresis
  std::uint64_t fallbacks = 0;     ///< epochs abandoned to the last-good plan
  std::uint64_t resolves = 0;      ///< per-tenant demand solves executed
  std::uint64_t unstable_windows = 0;  ///< tenant-epochs kept on old demand
};

class QosController {
 public:
  /// `initial_iops` is the static plan (one share per tenant) the controller
  /// starts from and falls back to scale; `total_iops` the physical capacity
  /// behind all tenants (Σ shares + overflow headroom).  `cache` memoizes
  /// demand solves content-addressed (nullable); `pool` fans them out
  /// (nullable = serial; see the reentrancy note above).  Both borrowed.
  QosController(ControllerConfig config, std::vector<double> initial_iops,
                double total_iops, ResultCache* cache = nullptr,
                ThreadPool* pool = nullptr);

  /// Feed the observability stream.  Consumes kArrival (client = tenant:
  /// grows that tenant's demand window) and kSlaBreach / kSlaRecover
  /// (client = tenant: flips its breach flag); ignores everything else.
  void on_event(const Event& e);

  /// Latest delivered-capacity health in [0, 1] (from the scheduler's
  /// CapacityMonitor); scales the budget the next epoch distributes.
  void set_health(double health);

  /// Re-solve demands and recompute the allocation as of `now` (the epoch
  /// boundary instant).  Returns the active allocation — updated in place
  /// when applied, unchanged when the epoch was skipped or fell back.
  const std::vector<double>& run_epoch(Time now);

  const std::vector<double>& allocation() const { return allocation_; }
  const ControllerStats& stats() const { return stats_; }
  std::size_t tenant_count() const { return allocation_.size(); }
  double total_iops() const { return total_; }

  /// True when tenant `t` is currently flagged in breach.
  bool in_breach(std::size_t t) const { return breached_.at(t); }

 private:
  struct TenantState {
    std::deque<Time> arrivals;   ///< window of recent arrival instants
    double demand_iops = 0;      ///< last demand estimate (solved or kept)
    double last_cmin = 0;        ///< previous solve's answer (bracket seed)
  };

  double solve_demand(std::size_t t, Time now);

  ControllerConfig config_;
  std::vector<double> allocation_;   ///< active per-tenant shares
  std::vector<TenantState> tenants_;
  std::vector<bool> breached_;
  double total_;
  double budget_;                    ///< distributable = total - headroom
  double health_ = 1.0;
  bool breach_changed_ = false;      ///< since the last applied/skipped epoch
  ResultCache* cache_;
  ThreadPool* pool_;
  ControllerStats stats_;
};

}  // namespace qos
