// pClock-style arrival-curve scheduler.
//
// pClock (Gulati, Merchant, Varman — SIGMETRICS 2007) tags each request with
// a deadline derived from its flow's SLA envelope (burst sigma, rate rho,
// latency dlt): a request that conforms to the token bucket (sigma, rho) is
// due dlt after arrival; non-conforming requests are pushed out by the time
// the bucket needs to earn the missing tokens.  The server issues the
// earliest deadline first.  Spare capacity automatically goes to whichever
// flow has the earliest outstanding deadline, making the scheduler
// work-conserving.
//
// This is a faithful reimplementation of pClock's tagging discipline on our
// abstract flow model (costs in request slots).  Per-flow deadlines are
// non-decreasing (FIFO within a flow), so earliest-deadline-first reduces to
// a priority structure over (head deadline, flow id).
//
// Million-flow layout: flow ids map through a FlatSlotMap to dense slots
// assigned on first touch; per-flow state is slot-indexed.  The EDF head
// structure is selectable: an indexed min-heap under the pair key (head
// deadline, flow id), or a hierarchical timer wheel (util/timer_wheel.h)
// that buckets integer-microsecond deadlines and walks the head bucket for
// the exact (deadline, lowest flow id) minimum.  Both produce the identical
// dispatch stream — the wheel is an O(1)-amortized drop-in that wins at
// large backlogged-flow counts, so kAuto picks it when the configured flow
// space reaches kWheelAutoThreshold and keeps the heap below (bench:
// bench/micro_algorithms.cpp; equivalence: tests/test_fq_differential.cpp).
#pragma once

#include <utility>
#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/flat_table.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"
#include "util/timer_wheel.h"

namespace qos {

struct PClockSla {
  double sigma = 1;   ///< burst allowance (requests)
  double rho = 100;   ///< sustained rate (requests / second)
  Time delta = 10'000;  ///< latency bound for conforming requests (us)
};

/// EDF head-structure choice for PClockScheduler.  kAuto selects the timer
/// wheel once the flow space reaches kWheelAutoThreshold; the explicit
/// values pin the choice (tests run both and diff the dispatch streams).
enum class PClockHeadTags { kAuto, kHeap, kWheel };

class PClockScheduler final : public FairScheduler {
 public:
  explicit PClockScheduler(std::vector<PClockSla> slas,
                           PClockHeadTags head_tags = PClockHeadTags::kAuto);

  /// Million-flow form: `flow_count` flows sharing one SLA, stored O(1) —
  /// no dense per-flow vector is ever materialized.
  static PClockScheduler uniform(
      int flow_count, PClockSla sla,
      PClockHeadTags head_tags = PClockHeadTags::kAuto);

  /// Flow count at which kAuto switches from heap to timer wheel.  Below
  /// this the heap's tiny footprint wins; above it the wheel's O(1) pushes
  /// and cache-local bucket walks do (see bench/micro_algorithms.cpp).
  static constexpr int kWheelAutoThreshold = 4096;

  int flow_count() const override { return flow_count_; }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  bool uses_timer_wheel() const { return use_wheel_; }

  /// Bytes held by the scheduler's own structures: O(flows seen).
  std::size_t approx_memory_bytes() const;

 private:
  struct Item {
    std::uint64_t handle = 0;
    Time deadline = 0;
  };
  struct FlowState {
    PClockSla sla;
    double tokens = 0;      ///< current bucket level (<= sigma)
    Time last_update = 0;
    RingBuffer<Item> queue;
  };
  /// Heap key: (head deadline, flow id) — lexicographic pair order is the
  /// scan-equivalent EDF total order even though the heap is slot-keyed.
  using TagKey = std::pair<Time, int>;

  const PClockSla& sla_of(int flow) const {
    return dense_slas_.empty() ? uniform_sla_
                               : dense_slas_[static_cast<std::size_t>(flow)];
  }

  /// Slot for `flow`, materializing per-flow state on first touch.
  std::uint32_t activate(int flow);

  PClockScheduler() = default;  ///< used by the uniform() factory

  // EDF head structure, dispatching to the heap or the wheel.  Both order
  // by exact (deadline, flow id), so the choice is performance-only.
  bool head_empty() const;
  void head_push(std::uint32_t slot, Time deadline, int flow);
  void head_update(std::uint32_t slot, Time deadline);
  // Non-const: the wheel's find-min may renormalize its origin.
  std::uint32_t head_top_slot();
  int head_top_flow();
  void head_pop();

  int flow_count_ = 0;
  std::vector<PClockSla> dense_slas_;  ///< empty in uniform-SLA mode
  PClockSla uniform_sla_;
  bool use_wheel_ = false;
  FlatSlotMap index_;             ///< flow id -> dense slot
  std::vector<FlowState> state_;  ///< slot-indexed, grows on first touch
  IndexedMinHeap<TagKey> head_deadline_;  ///< EDF heap (heap mode)
  TimerWheel wheel_;                      ///< EDF wheel (wheel mode)
};

}  // namespace qos
