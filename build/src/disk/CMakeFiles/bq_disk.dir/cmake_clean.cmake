file(REMOVE_RECURSE
  "CMakeFiles/bq_disk.dir/cache.cpp.o"
  "CMakeFiles/bq_disk.dir/cache.cpp.o.d"
  "CMakeFiles/bq_disk.dir/disk_model.cpp.o"
  "CMakeFiles/bq_disk.dir/disk_model.cpp.o.d"
  "CMakeFiles/bq_disk.dir/raid.cpp.o"
  "CMakeFiles/bq_disk.dir/raid.cpp.o.d"
  "libbq_disk.a"
  "libbq_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
