# Empty dependencies file for test_curve_analysis.
# This may be replaced when dependencies are built.
