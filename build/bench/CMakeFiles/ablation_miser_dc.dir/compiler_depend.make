# Empty compiler generated dependencies file for ablation_miser_dc.
# This may be replaced when dependencies are built.
