// Block cache — LRU read caching with write-back dirty tracking.
//
// DiskSim models a cache in front of the mechanical disk; we provide the
// same: reads that hit are served at DRAM-ish latency, writes are absorbed
// into the cache (write-back) and flushed lazily, and misses pay the
// mechanical cost plus (when the cache is full of dirty blocks) an eviction
// write-back.  Deterministic by construction — no randomness, LRU order is
// a pure function of the request sequence.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace qos {

class BlockCache {
 public:
  /// `capacity_blocks` — number of cache lines (one line per block run of
  /// `line_blocks` 512 B blocks).
  explicit BlockCache(std::size_t capacity_lines,
                      std::uint32_t line_blocks = 8)
      : capacity_(capacity_lines), line_blocks_(line_blocks) {
    QOS_EXPECTS(capacity_lines > 0);
    QOS_EXPECTS(line_blocks > 0);
  }

  struct AccessResult {
    bool hit = false;          ///< present before the access
    bool writeback = false;    ///< a dirty line was evicted
    std::uint64_t evicted_lba = 0;  ///< first LBA of the written-back line
  };

  /// Access one block address for read or write; inserts on miss and
  /// updates LRU order.  Multi-line requests should call once per line
  /// (see lines_of).
  AccessResult access(std::uint64_t lba, bool is_write);

  /// Number of cache lines a request [lba, lba + size_blocks) touches, and
  /// the line-aligned addresses.
  std::vector<std::uint64_t> lines_of(std::uint64_t lba,
                                      std::uint32_t size_blocks) const;

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dirty_lines() const { return dirty_count_; }

  // Statistics since construction.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0 : static_cast<double>(hits_) /
                                static_cast<double>(total);
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool dirty = false;
  };

  std::size_t capacity_;
  std::uint32_t line_blocks_;
  std::list<Line> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Line>::iterator> map_;
  std::size_t dirty_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace qos
