#include "trace/rate_series.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

Trace uniform_trace(int count, Time gap) {
  std::vector<Request> reqs;
  for (int i = 0; i < count; ++i) reqs.push_back(Request{.arrival = i * gap});
  return Trace(std::move(reqs));
}

TEST(RateSeries, UniformLoad) {
  // One request per 10 ms => 100 IOPS in every 100 ms window.
  Trace t = uniform_trace(100, 10'000);
  auto series = rate_series(t, 100'000);
  ASSERT_GE(series.size(), 9u);
  for (std::size_t i = 0; i + 1 < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i].iops, 100.0);
}

TEST(RateSeries, WindowStartsAreAligned) {
  Trace t = uniform_trace(10, 50'000);
  auto series = rate_series(t, 100'000);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_EQ(series[i].window_start, static_cast<Time>(i) * 100'000);
}

TEST(RateSeries, BurstShowsAsPeak) {
  std::vector<Request> reqs;
  for (int i = 0; i < 10; ++i) reqs.push_back(Request{.arrival = i * 100'000});
  for (int i = 0; i < 50; ++i)
    reqs.push_back(Request{.arrival = 500'000 + i * 100});
  Trace t(std::move(reqs));
  auto series = rate_series(t, 100'000);
  auto summary = summarize(series);
  EXPECT_DOUBLE_EQ(summary.peak_iops, 510.0);  // 50 burst + 1 steady per 0.1s
}

TEST(RateSeries, ExplicitHorizonPadsWithZeros) {
  Trace t = uniform_trace(2, 10'000);
  auto series = rate_series(t, 100'000, 1'000'000);
  EXPECT_EQ(series.size(), 10u);
  EXPECT_DOUBLE_EQ(series.back().iops, 0.0);
}

TEST(RateSeries, ArrivalVectorOverloadMatchesTrace) {
  Trace t = uniform_trace(20, 30'000);
  std::vector<Time> arrivals;
  for (const auto& r : t) arrivals.push_back(r.arrival);
  auto a = rate_series(t, 100'000);
  auto b = rate_series(arrivals, 100'000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].iops, b[i].iops);
}

TEST(RateSeries, EmptyTrace) {
  EXPECT_TRUE(rate_series(Trace(), 100'000).empty());
  EXPECT_DOUBLE_EQ(summarize({}).peak_iops, 0.0);
}

}  // namespace
}  // namespace qos
