// Flat cache-line-bucketed open-addressing flow table.
//
// The FQ backends key per-flow state by integer flow id.  Up to PR 10 that
// state lived in vectors pre-sized to the full id space, which is fine at
// 256 flows and hopeless at 10^6: a scheduler paid O(capacity) memory and
// construction for flows that may never arrive.  FlatSlotMap instead maps a
// sparse flow id to a *dense slot* assigned on first touch, so per-flow
// state (kept by the caller in slot-indexed arrays) is O(flows ever seen),
// not O(id capacity).
//
// Layout: an open-addressing table of 64-byte buckets, each holding up to
// 12 (tag byte, slot) entries plus an occupancy bitmap.  A lookup hashes the
// key to a bucket and a 1-byte tag; one cache-line load answers the common
// case (tag filter over the bucket's entries), and collisions probe *within
// the line* before moving to the next bucket — no node chasing, no per-entry
// allocation.  A full-key confirm reads the slot's entry in `slot_keys_`,
// the array the caller is about to index anyway.
//
// Flows are never erased: an idle flow's tag state (last finish tag, token
// debt) must survive its queue draining, so the map only grows.  That rules
// out tombstones and keeps probing exact: the first bucket with a free entry
// on the probe path terminates an unsuccessful lookup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qos {

class FlatSlotMap {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  FlatSlotMap() = default;

  std::size_t size() const { return slot_keys_.size(); }
  bool empty() const { return slot_keys_.empty(); }

  /// Slot for `key`, or kNoSlot when the key has never been inserted.
  std::uint32_t find(std::int32_t key) const {
    if (buckets_.empty()) return kNoSlot;
    const std::uint64_t h = hash(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t b = static_cast<std::size_t>(h >> 32) & bucket_mask();
    while (true) {
      const Bucket& bucket = buckets_[b];
      std::uint32_t candidates = bucket.used;
      while (candidates != 0) {
        const int e = count_trailing_zeros(candidates);
        candidates &= candidates - 1;
        if (bucket.tags[e] == tag) {
          const std::uint32_t slot = bucket.slots[e];
          if (slot_keys_[slot] == key) return slot;
        }
      }
      if (bucket.used != kFullMask) return kNoSlot;  // free entry => absent
      b = (b + 1) & bucket_mask();
    }
  }

  /// Slot for `key`, inserting a fresh dense slot (== previous size()) on
  /// first touch.
  std::uint32_t find_or_insert(std::int32_t key) {
    const std::uint32_t found = find(key);
    if (found != kNoSlot) return found;
    if (slot_keys_.size() + 1 >
        (buckets_.size() * kEntriesPerBucket * 7) / 8)
      grow();
    const std::uint32_t slot = static_cast<std::uint32_t>(slot_keys_.size());
    slot_keys_.push_back(key);
    insert_slot(key, slot);
    return slot;
  }

  /// Flow id that was assigned `slot` (slot must be live).
  std::int32_t key_of_slot(std::uint32_t slot) const {
    QOS_EXPECTS(slot < slot_keys_.size());
    return slot_keys_[slot];
  }

  /// Bytes held by the table itself (buckets + slot->key array): the
  /// footprint scales with flows *seen*, not with the id capacity.
  std::size_t memory_bytes() const {
    return buckets_.capacity() * sizeof(Bucket) +
           slot_keys_.capacity() * sizeof(std::int32_t);
  }

 private:
  static constexpr int kEntriesPerBucket = 12;
  static constexpr std::uint32_t kFullMask = (1u << kEntriesPerBucket) - 1;

  // 2 (bitmap) + 12 (tags) + 48 (slots) = 62 bytes, padded to one line.
  struct alignas(64) Bucket {
    std::uint16_t used = 0;                        ///< occupancy bitmap
    std::uint8_t tags[kEntriesPerBucket] = {};
    std::uint32_t slots[kEntriesPerBucket] = {};
  };
  static_assert(sizeof(Bucket) == 64, "bucket must be one cache line");

  static int count_trailing_zeros(std::uint32_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctz(x);
#else
    int n = 0;
    while ((x & 1u) == 0) {
      x >>= 1;
      ++n;
    }
    return n;
#endif
  }

  static std::uint64_t hash(std::int32_t key) {
    // Fibonacci multiplicative mix; high bits select the bucket, a middle
    // byte the tag, so bucket index and tag stay independent.
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(key)) *
           0x9E3779B97F4A7C15ull;
  }

  static std::uint8_t tag_of(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 24);
  }

  std::size_t bucket_mask() const { return buckets_.size() - 1; }

  void insert_slot(std::int32_t key, std::uint32_t slot) {
    if (buckets_.empty()) buckets_.resize(kMinBuckets);
    const std::uint64_t h = hash(key);
    std::size_t b = static_cast<std::size_t>(h >> 32) & bucket_mask();
    while (buckets_[b].used == kFullMask) b = (b + 1) & bucket_mask();
    Bucket& bucket = buckets_[b];
    const int e =
        count_trailing_zeros(~static_cast<std::uint32_t>(bucket.used) &
                             kFullMask);
    bucket.used = static_cast<std::uint16_t>(bucket.used | (1u << e));
    bucket.tags[e] = tag_of(h);
    bucket.slots[e] = slot;
  }

  void grow() {
    const std::size_t next =
        buckets_.empty() ? kMinBuckets : buckets_.size() * 2;
    buckets_.assign(next, Bucket{});
    for (std::uint32_t slot = 0; slot < slot_keys_.size(); ++slot)
      insert_slot(slot_keys_[slot], slot);
  }

  static constexpr std::size_t kMinBuckets = 2;  ///< power of two

  std::vector<Bucket> buckets_;
  std::vector<std::int32_t> slot_keys_;  ///< slot -> flow id (confirm + grow)
};

}  // namespace qos
