file(REMOVE_RECURSE
  "libbq_core.a"
)
