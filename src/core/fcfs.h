// FCFS baseline: no decomposition, one queue, one server (paper Section 3.2,
// "base case for the evaluation").  Bursts spill over and delay well-behaved
// requests — the behaviour the shaping framework eliminates.
#pragma once

#include <deque>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/check.h"

namespace qos {

class FcfsScheduler final : public Scheduler {
 public:
  int server_count() const override { return 1; }

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      enqueued_ = &registry->counter("fcfs.enqueued");
      q1_occ_ = &registry->occupancy("q1.occupancy");
    }
  }

  void on_arrival(const Request& r, Time now) override {
    queue_.push_back(r);
    if (enqueued_ != nullptr) enqueued_->add();
    if (q1_occ_ != nullptr)
      q1_occ_->update(now, static_cast<std::int64_t>(queue_.size()));
    if (probe_) {
      // FCFS makes no admission decision: every request "admits" into the
      // one queue with no bound, reported as maxQ1 = 0 (unbounded).
      probe_.emit({.time = now,
                   .seq = r.seq,
                   .a = static_cast<std::int64_t>(queue_.size()),
                   .b = 0,
                   .client = r.client,
                   .kind = EventKind::kAdmit,
                   .klass = ServiceClass::kPrimary});
    }
  }

  std::optional<Dispatch> next_for(int server, Time now) override {
    QOS_EXPECTS(server == 0);
    if (queue_.empty()) return std::nullopt;
    Dispatch d{queue_.front(), ServiceClass::kPrimary};
    queue_.pop_front();
    if (q1_occ_ != nullptr)
      q1_occ_->update(now, static_cast<std::int64_t>(queue_.size()));
    return d;
  }

 private:
  std::deque<Request> queue_;

  Probe probe_;
  Counter* enqueued_ = nullptr;
  OccupancySeries* q1_occ_ = nullptr;
};

}  // namespace qos
