#include "core/shaper.h"

#include "core/fairqueue.h"
#include "core/fcfs.h"
#include "core/miser.h"
#include "core/split.h"
#include "sim/server.h"
#include "util/check.h"

namespace qos {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFcfs: return "FCFS";
    case Policy::kSplit: return "Split";
    case Policy::kFairQueue: return "FairQueue";
    case Policy::kMiser: return "Miser";
  }
  QOS_CHECK(false);
}

std::unique_ptr<Scheduler> make_scheduler(Policy policy, double cmin_iops,
                                          Time delta, double headroom_iops) {
  switch (policy) {
    case Policy::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case Policy::kSplit:
      return std::make_unique<SplitScheduler>(cmin_iops, delta);
    case Policy::kFairQueue:
      return std::make_unique<FairQueueScheduler>(cmin_iops, delta,
                                                  headroom_iops);
    case Policy::kMiser:
      return std::make_unique<MiserScheduler>(cmin_iops, delta);
  }
  QOS_CHECK(false);
}

ShapingOutcome shape_and_run(const Trace& trace, const ShapingConfig& config) {
  QOS_EXPECTS(config.delta > 0);
  ShapingOutcome out;
  out.cmin_iops = config.capacity_override_iops > 0
                      ? config.capacity_override_iops
                      : min_capacity(trace, config.fraction, config.delta)
                            .cmin_iops;
  out.headroom_iops = config.headroom_override_iops >= 0
                          ? config.headroom_override_iops
                          : overflow_headroom_iops(config.delta);

  auto scheduler = make_scheduler(config.policy, out.cmin_iops, config.delta,
                                  out.headroom_iops);

  if (config.policy == Policy::kSplit) {
    ConstantRateServer primary(out.cmin_iops);
    ConstantRateServer overflow(out.headroom_iops > 0 ? out.headroom_iops
                                                      : 1.0);
    Server* servers[] = {&primary, &overflow};
    out.sim = simulate(trace, *scheduler, servers);
  } else {
    ConstantRateServer server(out.total_iops());
    out.sim = simulate(trace, *scheduler, server);
  }
  return out;
}

}  // namespace qos
