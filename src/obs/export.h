// Export recorded events and registry contents as CSV or JSON.
//
// Stateless formatters: feed them a RecordingSink's event vector or a
// MetricRegistry and write the returned string wherever it should go.  The
// CSV event schema is one row per event
// (time_us,kind,seq,client,klass,server,a,b,c); registry exports flatten
// each metric to (name,type,stat,value) rows.
#pragma once

#include <span>
#include <string>

#include "obs/event.h"
#include "obs/metrics.h"

namespace qos {

class CsvExporter {
 public:
  static std::string events(std::span<const Event> events);
  static std::string registry(const MetricRegistry& registry);
};

class JsonExporter {
 public:
  static std::string events(std::span<const Event> events);
  static std::string registry(const MetricRegistry& registry);
};

}  // namespace qos
