// Engine profiling: ProfileScope/ProfileCollector aggregation, null-collector
// inertness, MetricRegistry export, concurrent recording through the pool,
// and the bench manifest's "profile" section.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "runner/bench_io.h"
#include "runner/sweep.h"
#include "trace/presets.h"

namespace qos {
namespace {

TEST(Profile, ScopeAggregatesIntoCollector) {
  ProfileCollector collector;
  EXPECT_TRUE(collector.empty());
  for (int i = 0; i < 3; ++i) {
    ProfileScope scope(&collector, "phase_a");
    // Do a little measurable work.
    volatile std::uint64_t x = 0;
    for (int j = 0; j < 1000; ++j) x = x + static_cast<std::uint64_t>(j);
  }
  { ProfileScope scope(&collector, "phase_b"); }

  const auto snapshot = collector.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  const PhaseProfile& a = snapshot.at("phase_a");
  EXPECT_EQ(a.calls, 3u);
  EXPECT_GE(a.wall_us, a.max_wall_us);  // sum >= slowest single call
  EXPECT_EQ(snapshot.at("phase_b").calls, 1u);
  EXPECT_FALSE(collector.empty());
}

TEST(Profile, NullCollectorIsInert) {
  // Must not crash, allocate, or record anywhere.
  for (int i = 0; i < 10; ++i) ProfileScope scope(nullptr, "ignored");
  SUCCEED();
}

TEST(Profile, ExportToRegistry) {
  ProfileCollector collector;
  collector.record("evaluate", 1500, 1400);
  collector.record("evaluate", 500, 450);

  MetricRegistry registry;
  collector.export_to(registry);
  EXPECT_EQ(registry.counter("profile.evaluate.calls").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("profile.evaluate.wall_us").value(), 2000.0);
  EXPECT_DOUBLE_EQ(registry.gauge("profile.evaluate.cpu_us").value(), 1850.0);
  EXPECT_DOUBLE_EQ(registry.gauge("profile.evaluate.max_wall_us").value(),
                   1500.0);
}

TEST(Profile, ConcurrentRecordingIsSafe) {
  ProfileCollector collector;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < 250; ++i)
        ProfileScope scope(&collector, "contended");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(collector.snapshot().at("contended").calls, 1000u);
}

TEST(Profile, SweepRunnerRecordsPhases) {
  const Trace trace = preset_trace(Workload::kWebSearch, 10 * kUsPerSec);
  SweepCell cell;
  cell.trace_name = "WebSearch";
  cell.trace = &trace;
  cell.shaping.policy = Policy::kMiser;
  cell.shaping.delta = from_ms(10);
  cell.shaping.capacity_override_iops = 250;

  ProfileCollector collector;
  SweepOptions options;
  options.threads = 2;
  options.profile = &collector;
  SweepRunner runner(options);
  runner.run_cells(std::vector<SweepCell>{cell, cell});

  const auto snapshot = collector.snapshot();
  ASSERT_TRUE(snapshot.count("sweep.run_cells"));
  ASSERT_TRUE(snapshot.count("sweep.evaluate_cell"));
  EXPECT_EQ(snapshot.at("sweep.run_cells").calls, 1u);
  EXPECT_EQ(snapshot.at("sweep.evaluate_cell").calls, 2u);
}

TEST(Profile, BenchManifestGainsProfileSection) {
  BenchTiming timing;
  timing.name = "unit";
  timing.wall_seconds = 0.25;
  timing.rows = 3;

  // Without a collector (or with an empty one) the JSON is unchanged.
  const std::string plain = bench_timing_json(timing);
  EXPECT_EQ(plain.find("profile"), std::string::npos);
  ProfileCollector empty;
  EXPECT_EQ(bench_timing_json(timing, &empty), plain);

  ProfileCollector collector;
  collector.record("sweep.evaluate_cell", 1200, 1100);
  const std::string with_profile = bench_timing_json(timing, &collector);
  EXPECT_NE(with_profile.find("\"profile\""), std::string::npos);
  EXPECT_NE(with_profile.find("\"sweep.evaluate_cell\""), std::string::npos);
  EXPECT_NE(with_profile.find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(with_profile.find("\"wall_us\": 1200"), std::string::npos);
  EXPECT_NE(with_profile.find("\"cpu_us\": 1100"), std::string::npos);
}

TEST(Profile, ThreadCpuTimeAdvancesWithWork) {
  const std::uint64_t before = thread_cpu_time_us();
  volatile double x = 1.0;
  for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001 + 0.5;
  const std::uint64_t after = thread_cpu_time_us();
  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace qos
