file(REMOVE_RECURSE
  "CMakeFiles/test_curve_analysis.dir/test_curve_analysis.cpp.o"
  "CMakeFiles/test_curve_analysis.dir/test_curve_analysis.cpp.o.d"
  "test_curve_analysis"
  "test_curve_analysis.pdb"
  "test_curve_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_curve_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
