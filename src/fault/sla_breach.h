// SlaBreachDetector — turns GraduatedSla tiers into live breach/recovery
// signals.
//
// The offline audit (core/sla.h) answers "did the run satisfy the SLA";
// operators need the online version: *when* did tier i fall below target,
// and when did it come back.  The detector keeps, per tier, a ring of the
// most recent completions' tier verdicts and compares the windowed achieved
// fraction against the tier target.  Hysteresis avoids flapping: a breach
// opens when achieved < fraction and only closes once achieved climbs back
// above fraction + recover_margin.  Each transition emits a
// kSlaBreach / kSlaRecover event and updates breach counters plus
// accumulated time-in-breach.
//
// Feed it directly via on_completion(), or attach it as an EventSink after
// the simulator (kCompletion events carry the response time in `a`).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sla.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "util/check.h"

namespace qos {

struct SlaBreachConfig {
  std::size_t window = 256;      ///< completions per evaluation window
  std::size_t min_samples = 32;  ///< verdicts withheld before this
  double recover_margin = 0.02;  ///< achieved must exceed target by this
};

class SlaBreachDetector final : public EventSink {
 public:
  explicit SlaBreachDetector(GraduatedSla sla, SlaBreachConfig config = {})
      : sla_(std::move(sla)), config_(config), tiers_(sla_.tiers.size()) {
    QOS_EXPECTS(sla_.valid());
    QOS_EXPECTS(config.window > 0);
    QOS_EXPECTS(config.min_samples > 0 && config.min_samples <= config.window);
    QOS_EXPECTS(config.recover_margin >= 0);
  }

  /// Where breach/recovery events go (optional; may be null).  Not owned.
  void attach_observability(EventSink* sink, MetricRegistry* registry) {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      breaches_ = &registry->counter("sla.breaches");
      recoveries_ = &registry->counter("sla.recoveries");
    }
  }

  /// Record one completion finishing at `now` with the given response time.
  /// Calls must have non-decreasing `now`.
  void on_completion(Time now, Time response_time) {
    for (std::size_t i = 0; i < tiers_.size(); ++i)
      observe_tier(i, now, sla_.tiers[i].within(response_time));
  }

  /// EventSink adaptor: consumes kCompletion events (payload a = response
  /// time), ignores everything else — safe to attach to the full stream.
  void on_event(const Event& e) override {
    if (e.kind == EventKind::kCompletion) on_completion(e.time, e.a);
  }

  bool in_breach(std::size_t tier) const { return tiers_.at(tier).in_breach; }
  std::uint64_t breach_count(std::size_t tier) const {
    return tiers_.at(tier).breach_count;
  }

  /// Accumulated breach time for `tier` up to `now` (extends an open breach
  /// to `now`).
  Time time_in_breach(std::size_t tier, Time now) const {
    const TierState& t = tiers_.at(tier);
    return t.breach_time + (t.in_breach ? now - t.breach_start : 0);
  }

  /// Windowed achieved fraction for `tier` (1.0 until any samples arrive).
  double achieved(std::size_t tier) const {
    const TierState& t = tiers_.at(tier);
    if (t.verdicts.empty()) return 1.0;
    return static_cast<double>(t.within_count) /
           static_cast<double>(t.verdicts.size());
  }

  const GraduatedSla& sla() const { return sla_; }

 private:
  struct TierState {
    std::vector<bool> verdicts;  ///< ring of recent within-delta verdicts
    std::size_t head = 0;
    std::uint64_t within_count = 0;
    bool in_breach = false;
    Time breach_start = 0;
    Time breach_time = 0;
    std::uint64_t breach_count = 0;
  };

  void observe_tier(std::size_t i, Time now, bool within) {
    TierState& t = tiers_[i];
    if (t.verdicts.size() < config_.window) {
      t.verdicts.push_back(within);
    } else {
      if (t.verdicts[t.head]) --t.within_count;
      t.verdicts[t.head] = within;
      t.head = (t.head + 1) % config_.window;
    }
    if (within) ++t.within_count;
    if (t.verdicts.size() < config_.min_samples) return;

    const double frac = achieved(i);
    const SlaTier& tier = sla_.tiers[i];
    if (!t.in_breach && frac < tier.fraction) {
      t.in_breach = true;
      t.breach_start = now;
      ++t.breach_count;
      if (breaches_ != nullptr) breaches_->add();
      emit(EventKind::kSlaBreach, i, now, frac);
    } else if (t.in_breach &&
               frac >= tier.fraction + config_.recover_margin) {
      t.in_breach = false;
      t.breach_time += now - t.breach_start;
      if (recoveries_ != nullptr) recoveries_->add();
      emit(EventKind::kSlaRecover, i, now, frac);
    }
  }

  void emit(EventKind kind, std::size_t tier, Time now, double frac) {
    if (!probe_) return;
    probe_.emit({.time = now,
                 .a = static_cast<std::int64_t>(tier),
                 .b = static_cast<std::int64_t>(frac * 1e6),
                 .kind = kind});
  }

  GraduatedSla sla_;
  SlaBreachConfig config_;
  std::vector<TierState> tiers_;
  Probe probe_;
  Counter* breaches_ = nullptr;
  Counter* recoveries_ = nullptr;
};

}  // namespace qos
