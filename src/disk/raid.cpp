#include "disk/raid.h"

namespace qos {

int RaidMapper::data_disks() const {
  switch (geometry_.level) {
    case RaidLevel::kRaid0: return geometry_.disks;
    case RaidLevel::kRaid1: return geometry_.disks / 2;
    case RaidLevel::kRaid5: return geometry_.disks - 1;
  }
  QOS_CHECK(false);
}

PhysicalBlock RaidMapper::map_read(std::uint64_t logical_lba) const {
  const std::uint64_t stripe = geometry_.stripe_blocks;
  const std::uint64_t unit = logical_lba / stripe;    // stripe unit index
  const std::uint64_t offset = logical_lba % stripe;  // within the unit
  const int n = data_disks();
  const std::uint64_t row = unit / static_cast<std::uint64_t>(n);
  const int column = static_cast<int>(unit % static_cast<std::uint64_t>(n));

  switch (geometry_.level) {
    case RaidLevel::kRaid0:
      return {column, row * stripe + offset};
    case RaidLevel::kRaid1:
      // Mirrored pairs: data disk 2k, mirror 2k+1.
      return {2 * column, row * stripe + offset};
    case RaidLevel::kRaid5: {
      // Left-symmetric layout: parity rotates right-to-left by row; data
      // columns shift to skip the parity disk.
      const int disks = geometry_.disks;
      const int parity =
          static_cast<int>((static_cast<std::uint64_t>(disks - 1) -
                            row % static_cast<std::uint64_t>(disks)));
      int disk = column;
      if (disk >= parity) ++disk;  // skip the parity column
      return {disk, row * stripe + offset};
    }
  }
  QOS_CHECK(false);
}

PhysicalBlock RaidMapper::map_mirror(std::uint64_t logical_lba) const {
  QOS_EXPECTS(geometry_.level == RaidLevel::kRaid1);
  PhysicalBlock primary = map_read(logical_lba);
  return {primary.disk + 1, primary.lba};
}

int RaidMapper::parity_disk(std::uint64_t logical_lba) const {
  QOS_EXPECTS(geometry_.level == RaidLevel::kRaid5);
  const std::uint64_t unit = logical_lba / geometry_.stripe_blocks;
  const std::uint64_t row =
      unit / static_cast<std::uint64_t>(data_disks());
  const int disks = geometry_.disks;
  return static_cast<int>((static_cast<std::uint64_t>(disks - 1) -
                           row % static_cast<std::uint64_t>(disks)));
}

std::vector<PhysicalBlock> RaidMapper::write_targets(
    std::uint64_t logical_lba) const {
  switch (geometry_.level) {
    case RaidLevel::kRaid0:
      return {map_read(logical_lba)};
    case RaidLevel::kRaid1:
      return {map_read(logical_lba), map_mirror(logical_lba)};
    case RaidLevel::kRaid5: {
      const PhysicalBlock data = map_read(logical_lba);
      const PhysicalBlock parity{parity_disk(logical_lba), data.lba};
      return {data, parity};
    }
  }
  QOS_CHECK(false);
}

}  // namespace qos
