#include "core/split.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

SimResult run_split(const Trace& t, double cmin, Time delta, double dc) {
  SplitScheduler split(cmin, delta);
  ConstantRateServer primary(cmin);
  ConstantRateServer overflow(dc);
  Server* servers[] = {&primary, &overflow};
  return simulate(t, split, servers);
}

TEST(Split, UsesTwoServers) {
  SplitScheduler split(100, 10'000);
  EXPECT_EQ(split.server_count(), 2);
}

TEST(Split, PrimaryRequestsMeetDeadline) {
  Trace t = generate_poisson(600, 20 * kUsPerSec, 5);
  const Time delta = 10'000;
  const double cmin = 500;
  SimResult r = run_split(t, cmin, delta, 100);
  for (const auto& c : r.completions) {
    if (c.klass == ServiceClass::kPrimary) {
      EXPECT_LE(c.response_time(), delta);
      EXPECT_EQ(c.server, 0);
    } else {
      EXPECT_EQ(c.server, 1);
    }
  }
}

TEST(Split, OverflowServedEvenWhenPrimaryBusy) {
  // Saturate the primary: overflow requests still progress on server 1.
  std::vector<Request> reqs;
  for (int i = 0; i < 50; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  SimResult r = run_split(t, 100, 10'000, 100);  // maxQ1 = 1
  int overflow_done_early = 0;
  for (const auto& c : r.completions)
    if (c.klass == ServiceClass::kOverflow && c.finish < 200'000)
      ++overflow_done_early;
  EXPECT_GT(overflow_done_early, 10);
}

TEST(Split, NoCapacitySharing) {
  // Only overflow work remains after 1 admitted request; primary capacity
  // is wasted: 9 overflow requests at dC = 100 IOPS (10 ms each) need 90 ms
  // even though the primary server (1000 IOPS) sits idle.
  std::vector<Request> reqs;
  for (int i = 0; i < 10; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  // maxQ1 = 1 => 1 primary, 9 overflow.
  SimResult r = run_split(t, 100, 10'000, 100);
  EXPECT_EQ(r.makespan(), 90'000);
}

TEST(Split, ClassCountsMatchAnalyticDecomposition) {
  Trace t = generate_poisson(900, 10 * kUsPerSec, 7);
  const double cmin = 400;
  const Time delta = 20'000;
  SimResult r = run_split(t, cmin, delta, 50);
  std::int64_t primary = 0;
  for (const auto& c : r.completions)
    if (c.klass == ServiceClass::kPrimary) ++primary;
  // The dedicated-primary-server Split matches the analytic replay exactly:
  // same admission rule, same service process for Q1.
  EXPECT_EQ(primary, rtt_decompose(t, cmin, delta).admitted);
}

}  // namespace
}  // namespace qos
