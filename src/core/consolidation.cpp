#include "core/consolidation.h"

namespace qos {

ConsolidationReport consolidate(std::span<const Trace> clients,
                                double fraction, Time delta) {
  ConsolidationReport report;
  for (const auto& t : clients) {
    const double c = min_capacity(t, fraction, delta).cmin_iops;
    report.individual_iops.push_back(c);
    report.estimate_iops += c;
  }
  const Trace merged = Trace::merge(clients);
  report.actual_iops = min_capacity(merged, fraction, delta).cmin_iops;
  return report;
}

}  // namespace qos
