#include "core/adaptive.h"

#include <vector>

namespace qos {

bool OnlineCapacityEstimator::observe(Time arrival) {
  QOS_EXPECTS(arrival >= last_arrival_);
  last_arrival_ = arrival;
  window_.push_back(arrival);
  while (!window_.empty() && window_.front() < arrival - config_.window)
    window_.pop_front();

  if (arrival < next_reprofile_) return false;
  next_reprofile_ = arrival + config_.reprofile_interval;
  reprofile(arrival);
  return true;
}

void OnlineCapacityEstimator::reprofile(Time now) {
  ++reprofiles_;
  if (window_.empty()) return;
  // Re-base the window to 0 so the planner sees a standalone trace.
  const Time base = now - config_.window;
  std::vector<Request> reqs;
  reqs.reserve(window_.size());
  for (Time a : window_) {
    Request r;
    r.arrival = a - base >= 0 ? a - base : 0;
    reqs.push_back(r);
  }
  last_raw_ =
      min_capacity(Trace(std::move(reqs)), config_.fraction, config_.delta)
          .cmin_iops;
  smoothed_.observe(last_raw_);
}

}  // namespace qos
