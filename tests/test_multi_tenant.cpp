#include "core/multi_tenant.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

// Two tenants interleaved into one trace with client ids set.
Trace two_tenant_trace(double rate0, double rate1, Time duration,
                       std::uint64_t seed) {
  Trace a = generate_poisson(rate0, duration, seed);
  Trace b = generate_poisson(rate1, duration, seed + 1);
  const Trace parts[] = {a, b};
  return Trace::merge(parts);
}

std::vector<TenantSpec> two_specs() {
  return {TenantSpec{400, from_ms(10), 50},
          TenantSpec{400, from_ms(10), 50}};
}

TEST(MultiTenant, AllRequestsServed) {
  Trace t = two_tenant_trace(300, 300, 20 * kUsPerSec, 1101);
  MultiTenantScheduler sched(two_specs());
  ConstantRateServer server(sched.planned_capacity_iops());
  SimResult r = simulate(t, sched, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(MultiTenant, PlannedCapacitySumsReservations) {
  MultiTenantScheduler sched(two_specs());
  EXPECT_DOUBLE_EQ(sched.planned_capacity_iops(), 400 + 400 + 100);
}

TEST(MultiTenant, WellBehavedTenantsMeetDeadlines) {
  Trace t = two_tenant_trace(350, 350, 20 * kUsPerSec, 1103);
  MultiTenantScheduler sched(two_specs());
  ConstantRateServer server(sched.planned_capacity_iops());
  SimResult r = simulate(t, sched, server);
  std::int64_t primary = 0, missed = 0;
  for (const auto& c : r.completions) {
    if (c.klass != ServiceClass::kPrimary) continue;
    ++primary;
    if (c.response_time() > from_ms(10)) ++missed;
  }
  ASSERT_GT(primary, 0);
  EXPECT_LT(static_cast<double>(missed) / static_cast<double>(primary),
            0.005);
}

TEST(MultiTenant, MisbehavingTenantIsolated) {
  // Tenant 1 floods at 4x its reservation; tenant 0 stays in profile.  The
  // paper's isolation requirement: tenant 0's primary class must be
  // unaffected — the flood piles up in tenant 1's own overflow queue.
  Trace t = two_tenant_trace(350, 1600, 20 * kUsPerSec, 1105);
  MultiTenantScheduler sched(two_specs());
  ConstantRateServer server(sched.planned_capacity_iops());
  SimResult r = simulate(t, sched, server);

  std::vector<CompletionRecord> t0_primary;
  std::int64_t t1_overflow = 0;
  for (const auto& c : r.completions) {
    if (c.client == 0 && c.klass == ServiceClass::kPrimary)
      t0_primary.push_back(c);
    if (c.client == 1 && c.klass == ServiceClass::kOverflow) ++t1_overflow;
  }
  ResponseStats t0(t0_primary);
  ASSERT_FALSE(t0.empty());
  // Tenant 0's guarantee survives the neighbor's overload up to SFQ's round
  // granularity: with 2N backlogged flows a primary can lag a few extra
  // service slots, so allow a small sliver past delta but none past 2*delta.
  EXPECT_GT(t0.fraction_within(from_ms(10)), 0.97);
  EXPECT_GT(t0.fraction_within(from_ms(20)), 0.999);
  // The flood went to tenant 1's overflow class.
  EXPECT_GT(t1_overflow, 1000);
}

TEST(MultiTenant, MisbehaviorHurtsOnlyTheFlooder) {
  // Compare tenant 0's primary p99 with and without tenant 1 flooding.
  auto p99_tenant0 = [](double tenant1_rate, std::uint64_t seed) {
    Trace t = two_tenant_trace(350, tenant1_rate, 20 * kUsPerSec, seed);
    MultiTenantScheduler sched(two_specs());
    ConstantRateServer server(sched.planned_capacity_iops());
    SimResult r = simulate(t, sched, server);
    std::vector<CompletionRecord> t0;
    for (const auto& c : r.completions)
      if (c.client == 0 && c.klass == ServiceClass::kPrimary)
        t0.push_back(c);
    return ResponseStats(t0).percentile(0.99);
  };
  const Time calm = p99_tenant0(350, 1107);
  const Time flood = p99_tenant0(1600, 1107);
  // Within a couple of service slots of each other.
  EXPECT_LT(flood, calm + from_ms(5));
}

TEST(MultiTenant, RoutesByClientId) {
  std::vector<Request> reqs;
  reqs.push_back(Request{.arrival = 0, .client = 0});
  reqs.push_back(Request{.arrival = 0, .client = 1});
  Trace t(std::move(reqs));
  MultiTenantScheduler sched(two_specs());
  ConstantRateServer server(900);
  SimResult r = simulate(t, sched, server);
  ASSERT_EQ(r.completions.size(), 2u);
  EXPECT_EQ(sched.len_q1(0), 0);
  EXPECT_EQ(sched.len_q1(1), 0);
}

TEST(MultiTenantDeath, RejectsUnknownClient) {
  MultiTenantScheduler sched(two_specs());
  Request r;
  r.client = 7;
  EXPECT_DEATH(sched.on_arrival(r, 0), "Precondition");
}

TEST(MultiTenantDeath, FlowIdNarrowingIsChecked) {
  // 2 * tenant + 1 silently wrapped to a negative flow id past 2^30
  // tenants; the checked narrowing must abort instead, and the constructor
  // bound must keep every derivable flow id representable.
  EXPECT_DEATH(MultiTenantScheduler::checked_flow_id(
                   static_cast<std::size_t>(INT_MAX) + 1),
               "Precondition");
  EXPECT_EQ(MultiTenantScheduler::checked_flow_id(
                2 * MultiTenantScheduler::kMaxTenants + 1),
            INT_MAX);
}

}  // namespace
}  // namespace qos
