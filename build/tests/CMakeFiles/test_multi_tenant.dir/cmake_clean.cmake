file(REMOVE_RECURSE
  "CMakeFiles/test_multi_tenant.dir/test_multi_tenant.cpp.o"
  "CMakeFiles/test_multi_tenant.dir/test_multi_tenant.cpp.o.d"
  "test_multi_tenant"
  "test_multi_tenant.pdb"
  "test_multi_tenant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
