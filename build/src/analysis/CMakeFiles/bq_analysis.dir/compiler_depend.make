# Empty compiler generated dependencies file for bq_analysis.
# This may be replaced when dependencies are built.
