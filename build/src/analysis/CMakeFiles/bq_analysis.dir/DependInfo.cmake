
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/bq_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/bq_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/gnuplot.cpp" "src/analysis/CMakeFiles/bq_analysis.dir/gnuplot.cpp.o" "gcc" "src/analysis/CMakeFiles/bq_analysis.dir/gnuplot.cpp.o.d"
  "/root/repo/src/analysis/response_stats.cpp" "src/analysis/CMakeFiles/bq_analysis.dir/response_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/bq_analysis.dir/response_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
