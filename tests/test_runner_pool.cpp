// ThreadPool: deterministic ordering, exception propagation, shutdown.
#include "runner/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace qos {
namespace {

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallel_for(8, [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ResultsLandByIndex) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out =
      pool.parallel_map(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(257);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelMatchesSerialBitwise) {
  // The determinism contract: same inputs, any thread count, same outputs.
  auto work = [](std::size_t i) {
    double acc = static_cast<double>(i) + 0.5;
    for (int k = 0; k < 100; ++k) acc = acc * 1.0000001 + 1.0 / (1 + acc);
    return acc;
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  const auto a = serial.parallel_map(200, work);
  const auto b = wide.parallel_map(200, work);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i;
}

TEST(ThreadPool, LowestIndexedExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [](std::size_t i) {
      if (i % 10 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ThreadPool, PoolSurvivesExceptionAndRunsAgain) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(50, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  // The pool must remain fully usable: a clean job right after a throwing
  // one, on the same workers.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPool, ThrowCancelsUnclaimedIndices) {
  ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(100000,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("halt");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  // Fail-fast: nowhere near the full grid should have run after the throw.
  EXPECT_LT(ran.load(), 100000u);
}

TEST(ThreadPool, ZeroAndOneIndexJobs) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.parallel_for(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  // Exercises job-generation handoff: stale workers must never rerun or
  // miss a job.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> ran{0};
    pool.parallel_for(3, [&](std::size_t) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 3) << "round " << round;
  }
}

TEST(ThreadPool, DestructionWhileIdleIsClean) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);
    pool.parallel_for(16, [](std::size_t) {});
    // Destructor runs here with workers idle-parked.
  }
  SUCCEED();
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool pool(0);  // 0 = hardware
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ThreadPool, MoveOnlyResultsSupported) {
  ThreadPool pool(3);
  auto out = pool.parallel_map(
      10, [](std::size_t i) { return std::make_unique<int>(int(i)); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(*out[i], static_cast<int>(i));
}

}  // namespace
}  // namespace qos
