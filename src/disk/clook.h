// C-LOOK elevator queue.
//
// Storage arrays reorder low-level queues for throughput (paper Section 4.2:
// "scheduling at the low level of storage array uses some throughput
// maximizing ordering").  C-LOOK sweeps the head in one direction serving
// requests in ascending cylinder order, then jumps back to the lowest
// pending cylinder.  Used by the disk-backed example and tests; the QoS
// schedulers themselves stay order-preserving.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "trace/request.h"
#include "util/check.h"

namespace qos {

class ClookQueue {
 public:
  void push(const Request& r, std::int64_t cylinder) {
    queue_.emplace(std::pair<std::int64_t, std::uint64_t>{cylinder, r.seq}, r);
  }

  /// Pop the next request at-or-above the head position, wrapping to the
  /// lowest cylinder when the sweep passes the top.
  std::optional<Request> pop(std::int64_t head_cylinder) {
    if (queue_.empty()) return std::nullopt;
    auto it = queue_.lower_bound({head_cylinder, 0});
    if (it == queue_.end()) it = queue_.begin();  // wrap (the C of C-LOOK)
    Request r = it->second;
    queue_.erase(it);
    return r;
  }

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  // Key: (cylinder, seq) — seq keeps same-cylinder requests FIFO and makes
  // iteration deterministic.
  std::map<std::pair<std::int64_t, std::uint64_t>, Request> queue_;
};

}  // namespace qos
