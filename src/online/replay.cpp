#include "online/replay.h"

#include <memory>

#include "sim/server.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/indexed_heap.h"

namespace qos::online {

ReplayOutcome replay_trace(const Trace& trace, const ShaperOptions& options) {
  QOS_EXPECTS(options.max_q2_depth == 0);
  QOS_EXPECTS(trace.validate());

  VirtualClock clock;
  Shaper shaper(options, clock);
  const ShapingConfig& shaping = shaper.options().shaping;

  // Backing servers, built exactly like shape_and_run: Split gets a
  // dedicated overflow server at dC, everything else one server at
  // Cmin + dC.  Degraded admission is single-server strict priority.
  const double headroom = shaping.resolved_headroom_iops();
  std::vector<std::unique_ptr<ConstantRateServer>> owned;
  if (!options.use_degraded_admission &&
      shaping.policy == Policy::kSplit) {
    owned.push_back(
        std::make_unique<ConstantRateServer>(options.cmin_iops));
    owned.push_back(
        std::make_unique<ConstantRateServer>(headroom > 0 ? headroom : 1.0));
  } else {
    owned.push_back(
        std::make_unique<ConstantRateServer>(options.cmin_iops + headroom));
  }
  std::vector<Server*> servers;
  for (std::size_t s = 0; s < owned.size(); ++s) {
    Server* backing = owned[s].get();
    servers.push_back(shaping.server_decorator
                          ? shaping.server_decorator(backing,
                                                     static_cast<int>(s))
                          : backing);
  }
  QOS_CHECK(static_cast<int>(servers.size()) == shaper.server_count());
  if (EventSink* sink = shaper.event_sink(); sink != nullptr)
    for (Server* s : servers) s->attach_observability(sink);

  ReplayOutcome out;
  out.decisions.reserve(trace.size());
  out.sim.completions.reserve(trace.size());

  // In-flight record per server, valid from dispatch to completion.
  std::vector<CompletionRecord> slot(servers.size());
  IndexedMinHeap<Time> pending(static_cast<int>(servers.size()));
  std::size_t next_arrival = 0;

  while (true) {
    const Time next_completion =
        pending.empty() ? kTimeMax : pending.top_key();
    const Time arrival_time = next_arrival < trace.size()
                                  ? trace[next_arrival].arrival
                                  : kTimeMax;
    const Time now = std::min(next_completion, arrival_time);
    if (now == kTimeMax) break;
    clock.advance_to(now);

    // Completions first, in (finish, server) order — the simulator's
    // documented contract.
    while (!pending.empty() && pending.top_key() == now) {
      const int s = pending.pop();
      const CompletionRecord& record = slot[static_cast<std::size_t>(s)];
      out.sim.completions.push_back(record);
      shaper.on_completion(Request{.arrival = record.arrival,
                                   .seq = record.seq,
                                   .client = record.client},
                           record.klass, s, now);
    }

    // Then every arrival at `now`.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival == now) {
      out.decisions.push_back(shaper.admit(trace[next_arrival], now));
      ++next_arrival;
    }

    // Then refill the backends, asking the server models for durations in
    // dispatch order (they are stateful, like simulate() warns).
    for (const DispatchCommand& cmd : shaper.poll_dispatch(now)) {
      const std::size_t s = static_cast<std::size_t>(cmd.server);
      const Time dur = servers[s]->service_duration(cmd.request, now);
      QOS_CHECK(dur > 0);
      slot[s] = CompletionRecord{
          .seq = cmd.request.seq,
          .client = cmd.request.client,
          .arrival = cmd.request.arrival,
          .start = now,
          .finish = now + dur,
          .klass = cmd.klass,
          .server = static_cast<std::uint8_t>(cmd.server),
      };
      pending.push(cmd.server, now + dur);
    }
  }

  QOS_ENSURES(out.decisions.size() == trace.size());
  QOS_ENSURES(out.sim.completions.size() == trace.size());
  return out;
}

}  // namespace qos::online
