// Hot-path microbenchmark harness: heap backends vs their frozen scan
// references, plus event-simulator throughput.  Emits BENCH_micro.json.
//
// This is the perf baseline for the event-core overhaul, self-timed with no
// benchmark-library dependency so CI can run it anywhere:
//
//   * For each FQ backend (SFQ / WFQ / WF2Q+ / pClock) at 1, 16 and 256
//     flows, steady-state enqueue+dequeue pairs per second through the
//     production heap implementation and through the O(flows) linear-scan
//     reference (fq/scan_reference.h) it replaced, plus the speedup ratio.
//   * Simulator events per second (one arrival + one completion = two
//     events) for single-server FCFS and two-server Split runs.
//
// Each measurement repeats --repeats times and keeps the best run (least
// interference).  scripts/check_perf.py compares a fresh BENCH_micro.json
// against the committed bench/BENCH_micro.baseline.json and fails on >25%
// throughput regressions; see README "Perf baseline".
//
// usage: micro_algorithms [--json PATH] [--ops N] [--repeats R]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/fcfs.h"
#include "core/split.h"
#include "fq/pclock.h"
#include "fq/scan_reference.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "fq/wfq.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace {

using namespace qos;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Defeats dead-code elimination of the measured loops; never read except to
// keep the optimizer honest.
volatile std::uint64_t g_sink = 0;

struct MicroOptions {
  std::string json_path = "BENCH_micro.json";
  std::uint64_t ops = 200'000;
  int repeats = 5;
};

[[noreturn]] void usage_abort() {
  std::fprintf(stderr,
               "usage: micro_algorithms [--json PATH] [--ops N] "
               "[--repeats R]\n");
  std::exit(2);
}

MicroOptions parse_args(int argc, char** argv) {
  MicroOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_abort();
      return argv[++i];
    };
    if (std::strcmp(a, "--json") == 0) {
      o.json_path = value();
    } else if (std::strcmp(a, "--ops") == 0) {
      o.ops = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--repeats") == 0) {
      o.repeats = std::atoi(value());
    } else {
      usage_abort();
    }
  }
  if (o.ops == 0 || o.repeats <= 0) usage_abort();
  return o;
}

// Steady-state throughput of one scheduler instance: keep every flow
// backlogged, then alternate enqueue/dequeue so the tag structures stay at
// constant size while being exercised on both sides.  Unit costs make head
// tags collide constantly — the worst case for tie-breaking, and the common
// case for the two-class storage model.
template <typename Sched>
double fq_pairs_per_sec(Sched& s, int flows, std::uint64_t ops) {
  std::uint64_t handle = 0;
  Time now = 0;
  for (int b = 0; b < 4; ++b)
    for (int f = 0; f < flows; ++f) s.enqueue(f, handle++, 1.0, now);
  std::uint64_t sink = 0;
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < ops; ++i) {
    now += 3;
    s.enqueue(static_cast<int>(i % static_cast<std::uint64_t>(flows)),
              handle++, 1.0, now);
    sink += s.dequeue(now)->handle;
  }
  const double elapsed = now_seconds() - t0;
  while (s.dequeue(now)) {
  }
  g_sink = g_sink ^ sink;
  return static_cast<double>(ops) / elapsed;
}

template <typename MakeSched>
double best_fq_rate(MakeSched make, int flows, const MicroOptions& o) {
  double best = 0;
  for (int r = 0; r < o.repeats; ++r) {
    auto s = make(flows);
    best = std::max(best, fq_pairs_per_sec(s, flows, o.ops));
  }
  return best;
}

std::vector<PClockSla> uniform_slas(int flows) {
  return std::vector<PClockSla>(static_cast<std::size_t>(flows), PClockSla{});
}

struct FqCell {
  double heap_ops_per_sec = 0;
  double scan_ops_per_sec = 0;
  double speedup() const { return heap_ops_per_sec / scan_ops_per_sec; }
};

struct FqRow {
  const char* name;
  FqCell cells[3];  ///< at kFlowCounts
};

constexpr int kFlowCounts[3] = {1, 16, 256};

const Trace& sim_trace() {
  static const Trace trace = [] {
    WorkloadSpec spec;
    spec.states = {{400, 1.0}, {1200, 0.4}};
    spec.batches = {.batches_per_sec = 0.2,
                    .mean_size = 10,
                    .spread_us = 2'000,
                    .giant_prob = 0.05,
                    .giant_factor = 3};
    return generate_workload(spec, 30 * kUsPerSec, 4242);
  }();
  return trace;
}

// Events per second through the full simulator loop (arrival + completion
// per request).
template <typename RunOnce>
double best_sim_events_per_sec(const MicroOptions& o, RunOnce run) {
  const double events = 2.0 * static_cast<double>(sim_trace().size());
  double best = 0;
  for (int r = 0; r < o.repeats; ++r) {
    const double t0 = now_seconds();
    run();
    best = std::max(best, events / (now_seconds() - t0));
  }
  return best;
}

void json_fq_cell(std::FILE* f, int flows, const FqCell& c, bool last) {
  std::fprintf(f,
               "    \"flows_%d\": {\"heap_ops_per_sec\": %.0f, "
               "\"scan_ops_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
               flows, c.heap_ops_per_sec, c.scan_ops_per_sec, c.speedup(),
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const MicroOptions options = parse_args(argc, argv);

  FqRow rows[4] = {{"sfq", {}}, {"wfq", {}}, {"wf2q", {}}, {"pclock", {}}};
  for (int fi = 0; fi < 3; ++fi) {
    const int flows = kFlowCounts[fi];
    const std::vector<double> weights(static_cast<std::size_t>(flows), 1.0);
    rows[0].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int) { return SfqScheduler(weights); }, flows, options);
    rows[0].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int) { return scanref::ScanSfqScheduler(weights); }, flows,
        options);
    rows[1].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int) { return WfqScheduler(weights); }, flows, options);
    rows[1].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int) { return scanref::ScanWfqScheduler(weights); }, flows,
        options);
    rows[2].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int) { return Wf2qPlusScheduler(weights); }, flows, options);
    rows[2].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int) { return scanref::ScanWf2qPlusScheduler(weights); }, flows,
        options);
    rows[3].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int f) { return PClockScheduler(uniform_slas(f)); }, flows,
        options);
    rows[3].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int f) { return scanref::ScanPClockScheduler(uniform_slas(f)); },
        flows, options);
  }

  const double fcfs_events = best_sim_events_per_sec(options, [] {
    FcfsScheduler fcfs;
    ConstantRateServer server(600);
    g_sink = g_sink ^ simulate(sim_trace(), fcfs, server).completions.size();
  });
  const double split_events = best_sim_events_per_sec(options, [] {
    SplitScheduler split(500, 10'000);
    ConstantRateServer primary(500), overflow(100);
    Server* servers[] = {&primary, &overflow};
    g_sink =
        g_sink ^ simulate(sim_trace(), split, servers).completions.size();
  });

  // Human-readable table on stdout.
  std::printf("%-8s %8s %14s %14s %8s\n", "backend", "flows", "heap ops/s",
              "scan ops/s", "speedup");
  for (const FqRow& row : rows) {
    for (int fi = 0; fi < 3; ++fi) {
      const FqCell& c = row.cells[fi];
      std::printf("%-8s %8d %14.0f %14.0f %7.2fx\n", row.name, kFlowCounts[fi],
                  c.heap_ops_per_sec, c.scan_ops_per_sec, c.speedup());
    }
  }
  std::printf("simulator fcfs  %14.0f events/s\n", fcfs_events);
  std::printf("simulator split %14.0f events/s\n", split_events);

  std::FILE* f = std::fopen(options.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_algorithms: cannot write %s\n",
                 options.json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"name\": \"micro\",\n");
  std::fprintf(f, "  \"ops\": %llu,\n",
               static_cast<unsigned long long>(options.ops));
  std::fprintf(f, "  \"repeats\": %d,\n", options.repeats);
  std::fprintf(f, "  \"schedulers\": {\n");
  for (std::size_t r = 0; r < 4; ++r) {
    std::fprintf(f, "  \"%s\": {\n", rows[r].name);
    for (int fi = 0; fi < 3; ++fi)
      json_fq_cell(f, kFlowCounts[fi], rows[r].cells[fi], fi == 2);
    std::fprintf(f, "  }%s\n", r == 3 ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"simulator\": {\"fcfs_events_per_sec\": %.0f, "
               "\"split_events_per_sec\": %.0f}\n",
               fcfs_events, split_events);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "micro_algorithms: wrote %s\n",
               options.json_path.c_str());
  return 0;
}
