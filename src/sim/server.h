// Server models: anything that can state how long a request occupies it.
//
// The paper's analytical model is a constant-rate server of C IOPS; the
// DiskServer in src/disk provides a mechanical alternative.  Servers are
// stateful (error-diffusion phase, head position) and must be asked in
// dispatch order.
#pragma once

#include "trace/request.h"
#include "util/service_timer.h"
#include "util/time.h"

namespace qos {

class EventSink;

class Server {
 public:
  virtual ~Server() = default;

  /// Duration the given request will occupy the server when started at
  /// `now`.  Must be > 0.
  virtual Time service_duration(const Request& r, Time now) = 0;

  /// Attach an event sink for server-side events (fault injection, slow
  /// service).  The simulator forwards its sink here at the start of a run;
  /// plain servers emit nothing and ignore it.
  virtual void attach_observability(EventSink* sink) { (void)sink; }
};

/// Fixed-capacity server: every request takes 1/C seconds (error-diffused to
/// the microsecond grid so the long-run rate is exactly C).
class ConstantRateServer final : public Server {
 public:
  explicit ConstantRateServer(double capacity_iops)
      : timer_(capacity_iops), capacity_(capacity_iops) {}

  Time service_duration(const Request&, Time) override {
    const Time d = timer_.next();
    return d > 0 ? d : 1;  // a slot is never shorter than the grid
  }

  double capacity_iops() const { return capacity_; }

 private:
  ServiceTimer timer_;
  double capacity_;
};

}  // namespace qos
