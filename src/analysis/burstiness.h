// Workload burstiness characterization.
//
// The paper's premise is that storage arrivals are high-variance and
// long-range dependent (citing Leland et al.'s self-similarity and Riska &
// Riedel's disk-level LRD).  This module quantifies that structure so the
// synthetic presets can be validated against the published trace statistics
// and so users can characterize their own traces before shaping:
//
//   * peak-to-mean ratio across timescales,
//   * index of dispersion for counts (IDC) — variance/mean of window counts,
//   * count autocorrelation at configurable lags,
//   * Hurst exponent estimates (aggregated-variance method and R/S),
//   * a compact BurstinessProfile bundling all of the above.
#pragma once

#include <vector>

#include "trace/trace.h"
#include "util/time.h"

namespace qos {

/// Requests-per-window counts for the whole trace at the given window size.
std::vector<double> window_counts(const Trace& trace, Time window);

/// Index of dispersion for counts at a window size: Var[N] / E[N].
/// 1.0 for Poisson; grows with burstiness and (for LRD traffic) with the
/// window size.  Requires >= 2 windows.
double index_of_dispersion(const Trace& trace, Time window);

/// Lag-k autocorrelation of window counts.  Near 0 for Poisson; positive
/// and slowly decaying for bursty, autocorrelated arrivals.
double count_autocorrelation(const Trace& trace, Time window, int lag);

/// Hurst exponent via the aggregated-variance method: slope of
/// log Var[X^(m)] vs log m over octave aggregation levels, H = 1 + slope/2.
/// 0.5 for short-range-dependent traffic, -> 1 for strong LRD.
double hurst_aggregated_variance(const Trace& trace, Time base_window,
                                 int octaves = 8);

/// Hurst exponent via rescaled-range (R/S) analysis on window counts.
double hurst_rescaled_range(const Trace& trace, Time base_window,
                            int octaves = 8);

struct BurstinessProfile {
  double mean_iops = 0;
  double peak_to_mean_100ms = 0;
  double peak_to_mean_1s = 0;
  double peak_to_mean_10s = 0;
  double idc_100ms = 0;
  double idc_1s = 0;
  double autocorr_lag1_1s = 0;
  double hurst_av = 0;
  double hurst_rs = 0;
};

/// One-stop profile used by the characterization bench and preset tests.
BurstinessProfile characterize(const Trace& trace);

}  // namespace qos
