#include "online/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace qos::online {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Work dispatched but not yet finished on the simulated backend.  Shared
// across workers: any worker may complete work another worker's admission
// caused to dispatch (the Shaper's own lock orders the calls).
struct DrainQueue {
  std::mutex m;
  std::vector<std::pair<Time, DispatchCommand>> pending;  ///< (finish, cmd)
  std::atomic<std::uint64_t> completed{0};
};

// Dispatch-then-complete step every worker runs after its admissions: poll
// the shaper, give each command a simulated service time, and report
// whatever has finished by now.  With drain_us == 0 the backend is
// infinitely fast and everything completes immediately.
void drain(Shaper& shaper, DrainQueue& queue, Time drain_us, bool flush) {
  std::vector<DispatchCommand> cmds = shaper.poll_dispatch();
  if (drain_us == 0) {
    for (const DispatchCommand& cmd : cmds)
      shaper.on_completion(cmd.request, cmd.klass, cmd.server);
    queue.completed.fetch_add(cmds.size(), std::memory_order_relaxed);
    return;
  }
  const Time now = shaper.clock().now();
  std::vector<DispatchCommand> due;
  {
    std::lock_guard<std::mutex> lock(queue.m);
    for (DispatchCommand& cmd : cmds)
      queue.pending.emplace_back(now + drain_us, std::move(cmd));
    for (std::size_t i = 0; i < queue.pending.size();) {
      if (flush || queue.pending[i].first <= now) {
        due.push_back(std::move(queue.pending[i].second));
        queue.pending[i] = std::move(queue.pending.back());
        queue.pending.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (const DispatchCommand& cmd : due)
    shaper.on_completion(cmd.request, cmd.klass, cmd.server);
  queue.completed.fetch_add(due.size(), std::memory_order_relaxed);
}

void pace_until(Clock& clock, Time due) {
  // Sleep for long waits, spin the tail — microsecond-scale pacing with
  // millisecond-scale sleeps would smear the target rate.
  while (true) {
    const Time now = clock.now();
    if (now >= due) return;
    if (due - now > 200) {
      std::this_thread::sleep_for(std::chrono::microseconds(due - now - 100));
    }
  }
}

struct WorkerTally {
  std::uint64_t decisions = 0;
  std::vector<std::uint64_t> latency_ns;
};

}  // namespace

LoadGenResult run_loadgen(Shaper& shaper, const Trace& arrivals,
                          const LoadGenOptions& options) {
  QOS_EXPECTS(options.threads >= 1);
  QOS_EXPECTS(options.batch >= 1);
  QOS_EXPECTS(!arrivals.empty());

  const std::uint64_t total =
      options.requests > 0 ? options.requests : arrivals.size();
  const std::uint64_t n = arrivals.size();
  const Time drain_us =
      options.drain_iops > 0
          ? std::max<Time>(1, std::llround(kUsPerSec / options.drain_iops))
          : 0;

  // Open loop: precompute each request's due instant so the aggregate rate
  // is target_iops with the trace's inter-arrival shape (cycles append
  // end-to-end, one mean gap between them).
  std::vector<Time> due;
  if (options.target_iops > 0) {
    const double mean = arrivals.mean_rate_iops();
    QOS_CHECK(mean > 0);
    const double scale = mean / options.target_iops;
    const Time start = arrivals.start_time();
    const Time cycle_len =
        arrivals.duration() +
        std::max<Time>(1, std::llround(kUsPerSec / mean));
    due.resize(total);
    for (std::uint64_t i = 0; i < total; ++i) {
      const Time cycles = static_cast<Time>(i / n) * cycle_len;
      const Time base = cycles + (arrivals[i % n].arrival - start);
      due[i] = std::llround(static_cast<double>(base) * scale);
    }
  }

  std::vector<WorkerTally> tallies(static_cast<std::size_t>(options.threads));
  DrainQueue queue;
  const std::size_t sample_cap =
      options.max_latency_samples /
      static_cast<std::size_t>(options.threads);

  auto worker = [&](int t) {
    WorkerTally& tally = tallies[static_cast<std::size_t>(t)];
    const std::uint64_t lo =
        total * static_cast<std::uint64_t>(t) /
        static_cast<std::uint64_t>(options.threads);
    const std::uint64_t hi =
        total * (static_cast<std::uint64_t>(t) + 1) /
        static_cast<std::uint64_t>(options.threads);
    tally.latency_ns.reserve(std::min<std::uint64_t>(hi - lo, sample_cap));
    std::vector<Request> batch;
    for (std::uint64_t i = lo; i < hi;) {
      const std::uint64_t count = std::min<std::uint64_t>(options.batch,
                                                          hi - i);
      batch.clear();
      for (std::uint64_t k = 0; k < count; ++k) {
        Request r = arrivals[(i + k) % n];
        r.seq = i + k;  // load-gen numbering: unique across cycles
        batch.push_back(r);
      }
      if (!due.empty()) pace_until(shaper.clock(), due[i]);

      const std::uint64_t t0 = now_ns();
      if (count == 1) {
        shaper.admit(batch[0]);
      } else {
        shaper.admit_batch(batch);
      }
      const std::uint64_t elapsed = now_ns() - t0;
      const std::uint64_t per_decision = elapsed / count;
      for (std::uint64_t k = 0;
           k < count && tally.latency_ns.size() < sample_cap; ++k)
        tally.latency_ns.push_back(per_decision);
      tally.decisions += count;
      i += count;
      drain(shaper, queue, drain_us, /*flush=*/false);
    }
  };

  const std::uint64_t wall0 = now_ns();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  // Complete the in-flight simulated services without refilling, so every
  // backend ends idle.  The class queues may legitimately keep backlog —
  // that is shaping under overload doing its job, not a leak.
  {
    std::vector<std::pair<Time, DispatchCommand>> leftover;
    {
      std::lock_guard<std::mutex> lock(queue.m);
      leftover.swap(queue.pending);
    }
    for (const auto& [finish, cmd] : leftover)
      shaper.on_completion(cmd.request, cmd.klass, cmd.server);
    queue.completed.fetch_add(leftover.size(), std::memory_order_relaxed);
  }
  QOS_CHECK(shaper.busy_servers() == 0);
  const double wall_seconds =
      static_cast<double>(now_ns() - wall0) / 1e9;

  LoadGenResult result;
  result.wall_seconds = wall_seconds;
  std::vector<std::uint64_t> samples;
  for (WorkerTally& tally : tallies) {
    result.decisions += tally.decisions;
    samples.insert(samples.end(), tally.latency_ns.begin(),
                   tally.latency_ns.end());
  }
  result.admitted_q1 = shaper.admitted_q1();
  result.admitted_q2 = shaper.admitted_q2();
  result.shed = shaper.shed();
  result.completions = queue.completed.load(std::memory_order_relaxed);
  result.decisions_per_sec =
      wall_seconds > 0 ? static_cast<double>(result.decisions) / wall_seconds
                       : 0;
  result.samples = samples.size();
  if (!samples.empty()) {
    auto quantile = [&](double q) {
      const std::size_t idx = std::min(
          samples.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(samples.size())));
      std::nth_element(samples.begin(),
                       samples.begin() + static_cast<std::ptrdiff_t>(idx),
                       samples.end());
      return samples[idx];
    };
    result.p50_ns = quantile(0.50);
    result.p99_ns = quantile(0.99);
    result.p999_ns = quantile(0.999);
  }
  QOS_ENSURES(result.decisions == total);
  return result;
}

}  // namespace qos::online
