file(REMOVE_RECURSE
  "CMakeFiles/test_arrival_curve.dir/test_arrival_curve.cpp.o"
  "CMakeFiles/test_arrival_curve.dir/test_arrival_curve.cpp.o.d"
  "test_arrival_curve"
  "test_arrival_curve.pdb"
  "test_arrival_curve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrival_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
