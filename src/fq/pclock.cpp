#include "fq/pclock.h"

#include <algorithm>
#include <cmath>

namespace qos {

PClockScheduler::PClockScheduler(std::vector<PClockSla> slas) {
  QOS_EXPECTS(!slas.empty());
  flows_.resize(slas.size());
  head_deadline_.reset(static_cast<int>(slas.size()));
  for (std::size_t i = 0; i < slas.size(); ++i) {
    QOS_EXPECTS(slas[i].sigma >= 0);
    QOS_EXPECTS(slas[i].rho > 0);
    QOS_EXPECTS(slas[i].delta >= 0);
    flows_[i].sla = slas[i];
    flows_[i].tokens = slas[i].sigma;
  }
}

void PClockScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                              Time now) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  QOS_EXPECTS(cost > 0);
  Flow& f = flows_[static_cast<std::size_t>(flow)];

  // Earn tokens since the last update, capped at the burst allowance.
  f.tokens = std::min(
      f.sla.sigma,
      f.tokens + f.sla.rho * to_sec(now - f.last_update));
  f.last_update = now;

  Item item;
  item.handle = handle;
  // The bucket goes into debt on non-conforming requests so that successive
  // deadlines march forward at 1/rho — a flow sending above its reservation
  // sees deadlines recede ahead of wall clock instead of its stale backlog
  // starving other flows (this is pClock's tagging, not a plain leaky
  // bucket).
  f.tokens -= cost;
  if (f.tokens >= 0) {
    item.deadline = now + f.sla.delta;  // conforming: due delta after arrival
  } else {
    item.deadline = now + f.sla.delta + from_sec(-f.tokens / f.sla.rho);
  }
  // Deadlines within a flow must be non-decreasing (FIFO per flow).
  if (!f.queue.empty())
    item.deadline = std::max(item.deadline, f.queue.back().deadline);
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty) head_deadline_.push(flow, item.deadline);
}

std::optional<FqDispatch> PClockScheduler::dequeue(Time) {
  if (head_deadline_.empty()) return std::nullopt;
  const int best = head_deadline_.top();
  Flow& f = flows_[static_cast<std::size_t>(best)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  if (f.queue.empty())
    head_deadline_.pop();
  else
    head_deadline_.update(best, f.queue.front().deadline);
  return FqDispatch{best, item.handle};
}

bool PClockScheduler::empty() const { return head_deadline_.empty(); }

std::size_t PClockScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

}  // namespace qos
