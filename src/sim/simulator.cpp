#include "sim/simulator.h"

#include <algorithm>

#include "obs/sink.h"
#include "util/check.h"

namespace qos {

std::vector<CompletionRecord> SimResult::by_seq() const {
  std::vector<CompletionRecord> out(completions.size());
  for (const auto& c : completions) {
    QOS_CHECK(c.seq < out.size());
    out[c.seq] = c;
  }
  return out;
}

Time SimResult::makespan() const {
  Time last = 0;
  for (const auto& c : completions) last = std::max(last, c.finish);
  return last;
}

namespace {

struct InService {
  bool busy = false;
  CompletionRecord record;  ///< filled at dispatch; finish set then too
};

}  // namespace

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   std::span<Server* const> servers, EventSink* sink) {
  QOS_EXPECTS(static_cast<int>(servers.size()) == scheduler.server_count());
  QOS_EXPECTS(!servers.empty());
  QOS_EXPECTS(trace.validate());

  const Probe probe(sink);
  if (sink != nullptr)
    for (Server* s : servers) s->attach_observability(sink);
  SimResult result;
  result.completions.reserve(trace.size());

  std::vector<InService> slot(servers.size());
  std::size_t next_arrival = 0;

  // Offer work to every idle server until no server accepts.  A dispatch on
  // one server can change scheduler state (e.g. Miser slack), so loop to a
  // fixed point.
  auto fill_servers = [&](Time now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        if (slot[s].busy) continue;
        auto d = scheduler.next_for(static_cast<int>(s), now);
        if (!d) continue;
        const Time dur = servers[s]->service_duration(d->request, now);
        QOS_CHECK(dur > 0);
        slot[s].busy = true;
        slot[s].record = CompletionRecord{
            .seq = d->request.seq,
            .client = d->request.client,
            .arrival = d->request.arrival,
            .start = now,
            .finish = now + dur,
            .klass = d->klass,
            .server = static_cast<std::uint8_t>(s),
        };
        if (probe) {
          probe.emit({.time = now,
                      .seq = d->request.seq,
                      .a = now - d->request.arrival,
                      .client = d->request.client,
                      .kind = EventKind::kDispatch,
                      .klass = d->klass,
                      .server = static_cast<std::uint8_t>(s)});
        }
        progress = true;
      }
    }
  };

  while (true) {
    // Next event: min over pending completions and the next arrival.
    Time next_completion = kTimeMax;
    for (const auto& s : slot)
      if (s.busy) next_completion = std::min(next_completion, s.record.finish);
    const Time arrival_time = next_arrival < trace.size()
                                  ? trace[next_arrival].arrival
                                  : kTimeMax;
    const Time now = std::min(next_completion, arrival_time);
    if (now == kTimeMax) break;  // drained

    // Completions first (see scheduler.h contract).  Process every server
    // finishing exactly at `now`, in server-index order for determinism.
    if (next_completion == now) {
      for (std::size_t s = 0; s < servers.size(); ++s) {
        if (!slot[s].busy || slot[s].record.finish != now) continue;
        slot[s].busy = false;
        result.completions.push_back(slot[s].record);
        if (probe) {
          probe.emit({.time = now,
                      .seq = slot[s].record.seq,
                      .a = slot[s].record.response_time(),
                      .client = slot[s].record.client,
                      .kind = EventKind::kCompletion,
                      .klass = slot[s].record.klass,
                      .server = static_cast<std::uint8_t>(s)});
        }
        scheduler.on_complete(
            Request{.arrival = slot[s].record.arrival,
                    .seq = slot[s].record.seq,
                    .client = slot[s].record.client},
            slot[s].record.klass, static_cast<int>(s), now);
      }
    }

    // Then all arrivals at `now`.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival == now) {
      if (probe) {
        probe.emit({.time = now,
                    .seq = trace[next_arrival].seq,
                    .client = trace[next_arrival].client,
                    .kind = EventKind::kArrival});
      }
      scheduler.on_arrival(trace[next_arrival], now);
      ++next_arrival;
    }

    fill_servers(now);
  }

  if (scheduler.fans_out())
    QOS_ENSURES(result.completions.size() >= trace.size());
  else
    QOS_ENSURES(result.completions.size() == trace.size());
  return result;
}

SimResult simulate(const Trace& trace, Scheduler& scheduler, Server& server,
                   EventSink* sink) {
  Server* servers[] = {&server};
  return simulate(trace, scheduler, servers, sink);
}

}  // namespace qos
