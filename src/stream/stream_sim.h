// Streaming simulation driver: pull requests from a RequestStream, push
// completions to a callback, never materialize either side.
//
// simulate_stream makes the *identical* SimEngine call sequence the
// materialized simulate() makes from a Trace — retire everything before each
// arrival, push it, drain at the end — so streamed and materialized runs of
// the same request sequence produce bit-identical completions and event
// streams (tests/test_stream.cpp).  The only difference is what is resident:
// at most the same-instant arrival batch plus per-server in-flight state,
// which is what lets bench/giant_run push 10^8 requests through a fixed RSS
// ceiling.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "sim/engine.h"
#include "sim/simulator.h"
#include "stream/stream.h"

namespace qos::stream {

/// Event counters from a streamed run (SimEngine's counters at drain).
struct StreamStats {
  std::uint64_t requests = 0;     ///< arrivals delivered
  std::uint64_t dispatches = 0;
  std::uint64_t completions = 0;
  Time makespan = 0;              ///< last completion instant

  std::uint64_t events() const {
    return requests + dispatches + completions;
  }
};

/// Core form: each CompletionRecord goes to `out` in retire order (the same
/// order simulate() appends them).  The stream contract (sorted, dense seq,
/// valid records) is checked request by request — the streaming equivalent
/// of simulate()'s trace.validate() precondition.
template <typename Out>
StreamStats simulate_stream(RequestStream& requests, Scheduler& scheduler,
                            std::span<Server* const> servers, EventSink* sink,
                            Out&& out) {
  SimEngine engine(scheduler, servers, sink);
  StreamStats stats;
  auto collect = [&out, &stats](const CompletionRecord& record) {
    stats.makespan = std::max(stats.makespan, record.finish);
    out(record);
  };
  std::uint64_t expected_seq = 0;
  while (auto r = requests.next()) {
    QOS_CHECK(request_record_ok(*r));
    QOS_CHECK(r->seq == expected_seq);
    ++expected_seq;
    engine.advance_until(r->arrival, collect);
    engine.push_arrival(*r);
  }
  engine.advance_until(kTimeMax, collect);
  QOS_ENSURES(engine.drained());
  stats.requests = engine.arrivals_delivered();
  stats.dispatches = engine.dispatches();
  stats.completions = engine.completions();
  if (scheduler.fans_out())
    QOS_ENSURES(stats.completions >= stats.requests);
  else
    QOS_ENSURES(stats.completions == stats.requests);
  return stats;
}

/// Materializing convenience — a SimResult interchangeable with simulate()'s
/// (for tests and small runs; O(n) memory, obviously).
SimResult collect_stream(RequestStream& requests, Scheduler& scheduler,
                         std::span<Server* const> servers,
                         EventSink* sink = nullptr);

/// Single-server overload, mirroring simulate()'s.
SimResult collect_stream(RequestStream& requests, Scheduler& scheduler,
                         Server& server, EventSink* sink = nullptr);

}  // namespace qos::stream
