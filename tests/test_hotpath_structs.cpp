// Unit and differential tests for the hot-path containers introduced by the
// event-core overhaul: RingBuffer (pooled deque replacement), IndexedMinHeap
// (scan-order-compatible priority queue) and MonotoneMinQueue (Miser's slack
// window).  The randomized sections drive each structure and its textbook
// counterpart (std::deque / linear scan / std::multiset) through identical
// seeded op streams and demand identical answers at every step.
#include <gtest/gtest.h>

#include <deque>
#include <limits>
#include <set>
#include <vector>

#include "util/indexed_heap.h"
#include "util/monotone_min.h"
#include "util/ring_buffer.h"
#include "util/rng.h"

namespace qos {
namespace {

TEST(RingBuffer, FifoOrderAcrossGrowth) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAroundKeepsOrder) {
  RingBuffer<int> rb;
  int next_in = 0, next_out = 0;
  // Oscillate around a small steady state so the head index laps the
  // backing array many times without triggering growth.
  for (int round = 0; round < 200; ++round) {
    for (int k = 0; k < 5; ++k) rb.push_back(next_in++);
    for (int k = 0; k < 5; ++k) {
      ASSERT_EQ(rb.front(), next_out++);
      rb.pop_front();
    }
  }
  EXPECT_TRUE(rb.empty());
  EXPECT_LE(rb.capacity(), 8u);  // never grew past the minimum pool
}

TEST(RingBuffer, IndexingIsFifoRelative) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  rb.pop_front();
  rb.pop_front();
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[7], 9);
  EXPECT_EQ(rb.back(), 9);
}

TEST(RingBuffer, PopBackAndClear) {
  RingBuffer<int> rb;
  for (int i = 0; i < 4; ++i) rb.push_back(i);
  rb.pop_back();
  EXPECT_EQ(rb.back(), 2);
  const std::size_t cap = rb.capacity();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);  // pool retained
}

TEST(RingBuffer, ReserveRoundsToPowerOfTwo) {
  RingBuffer<int> rb;
  rb.reserve(100);
  EXPECT_EQ(rb.capacity(), 128u);
  rb.reserve(10);  // never shrinks
  EXPECT_EQ(rb.capacity(), 128u);
}

TEST(RingBufferDeath, ReserveBeyondPow2RangeAborts) {
  // A request above the largest representable power of two used to make
  // ceil_pow2's doubling loop shift into zero and spin; it must abort on
  // the precondition instead.
  RingBuffer<int> rb;
  EXPECT_DEATH(rb.reserve(std::numeric_limits<std::size_t>::max()),
               "Precondition");
  EXPECT_DEATH(
      rb.reserve((static_cast<std::size_t>(1) << 63) + 1), "Precondition");
}

TEST(RingBuffer, DifferentialAgainstDeque) {
  RingBuffer<std::int64_t> rb;
  std::deque<std::int64_t> dq;
  Rng rng(42);
  for (int op = 0; op < 20'000; ++op) {
    const double p = rng.next_double();
    if (p < 0.5 || dq.empty()) {
      const std::int64_t v = rng.uniform_int(-1000, 1000);
      rb.push_back(v);
      dq.push_back(v);
    } else if (p < 0.85) {
      ASSERT_EQ(rb.front(), dq.front());
      rb.pop_front();
      dq.pop_front();
    } else {
      ASSERT_EQ(rb.back(), dq.back());
      rb.pop_back();
      dq.pop_back();
    }
    ASSERT_EQ(rb.size(), dq.size());
    if (!dq.empty()) {
      ASSERT_EQ(rb.front(), dq.front());
      ASSERT_EQ(rb.back(), dq.back());
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(0, dq.size() - 1));
      ASSERT_EQ(rb[i], dq[i]);
    }
  }
}

TEST(IndexedMinHeap, PopsInKeyThenIdOrder) {
  IndexedMinHeap<int> h(8);
  h.push(3, 20);
  h.push(7, 10);
  h.push(1, 20);
  h.push(5, 10);
  // Equal keys must pop lowest id first — the scan-compatible tie-break.
  EXPECT_EQ(h.pop(), 5);
  EXPECT_EQ(h.pop(), 7);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMinHeap, UpdateMovesBothDirections) {
  IndexedMinHeap<int> h(4);
  h.push(0, 10);
  h.push(1, 20);
  h.push(2, 30);
  h.update(2, 5);  // up
  EXPECT_EQ(h.top(), 2);
  h.update(2, 25);  // down
  EXPECT_EQ(h.top(), 0);
  EXPECT_EQ(h.key_of(2), 25);
}

TEST(IndexedMinHeap, EraseAndContains) {
  IndexedMinHeap<int> h(4);
  h.push(0, 1);
  h.push(1, 2);
  h.push(2, 3);
  EXPECT_TRUE(h.contains(1));
  h.erase(1);
  EXPECT_FALSE(h.contains(1));
  EXPECT_EQ(h.pop(), 0);
  EXPECT_EQ(h.pop(), 2);
}

TEST(IndexedMinHeap, ResetClearsAndResizes) {
  IndexedMinHeap<int> h(2);
  h.push(0, 1);
  h.reset(16);
  EXPECT_TRUE(h.empty());
  h.push(15, 7);
  EXPECT_EQ(h.top(), 15);
}

TEST(IndexedMinHeap, DifferentialAgainstLinearScan) {
  // The heap must replicate the exact total order of an ascending-index
  // strict-< scan: pop == argmin over (key, id).
  constexpr int kIds = 64;
  IndexedMinHeap<std::int64_t> h(kIds);
  std::vector<std::int64_t> key(kIds);
  std::vector<bool> in(kIds, false);
  Rng rng(7);
  for (int op = 0; op < 20'000; ++op) {
    const int id = static_cast<int>(rng.uniform_int(0, kIds - 1));
    const std::int64_t k = rng.uniform_int(0, 50);  // small range => many ties
    const double p = rng.next_double();
    if (!in[id]) {
      h.push(id, k);
      key[static_cast<std::size_t>(id)] = k;
      in[id] = true;
    } else if (p < 0.5) {
      h.update(id, k);
      key[static_cast<std::size_t>(id)] = k;
    } else if (p < 0.75) {
      h.erase(id);
      in[id] = false;
    } else {
      int best = -1;
      for (int i = 0; i < kIds; ++i) {
        if (!in[i]) continue;
        if (best < 0 || key[static_cast<std::size_t>(i)] <
                            key[static_cast<std::size_t>(best)])
          best = i;
      }
      ASSERT_EQ(h.pop(), best);
      in[best] = false;
    }
    if (!h.empty()) {
      int best = -1;
      for (int i = 0; i < kIds; ++i) {
        if (!in[i]) continue;
        if (best < 0 || key[static_cast<std::size_t>(i)] <
                            key[static_cast<std::size_t>(best)])
          best = i;
      }
      ASSERT_EQ(h.top(), best);
      ASSERT_EQ(h.top_key(), key[static_cast<std::size_t>(best)]);
    }
  }
}

TEST(MonotoneMinQueue, TracksMinUnderFifoRetirement) {
  MonotoneMinQueue m;
  m.push_back(5);
  m.push_back(3);
  m.push_back(4);
  EXPECT_EQ(m.min(), 3);
  m.pop_front(5);  // FIFO front was 5, already evicted from the window
  EXPECT_EQ(m.min(), 3);
  m.pop_front(3);
  EXPECT_EQ(m.min(), 4);
  m.pop_front(4);
  EXPECT_TRUE(m.empty());
}

TEST(MonotoneMinQueue, DuplicatesStayBalanced) {
  MonotoneMinQueue m;
  m.push_back(2);
  m.push_back(2);
  m.push_back(2);
  m.pop_front(2);
  EXPECT_EQ(m.min(), 2);
  m.pop_front(2);
  EXPECT_EQ(m.min(), 2);
  m.pop_front(2);
  EXPECT_TRUE(m.empty());
}

TEST(MonotoneMinQueue, DifferentialAgainstMultiset) {
  // Replays Miser's exact usage: values retire in insertion order, min is
  // read after every op.  The multiset is the pre-overhaul bookkeeping.
  MonotoneMinQueue m;
  std::multiset<std::int64_t> ms;
  std::deque<std::int64_t> fifo;
  Rng rng(99);
  for (int op = 0; op < 20'000; ++op) {
    if (rng.next_double() < 0.55 || fifo.empty()) {
      const std::int64_t v = rng.uniform_int(-50, 50);
      m.push_back(v);
      ms.insert(v);
      fifo.push_back(v);
    } else {
      const std::int64_t v = fifo.front();
      fifo.pop_front();
      m.pop_front(v);
      ms.erase(ms.find(v));
    }
    ASSERT_EQ(m.empty(), ms.empty());
    if (!ms.empty()) ASSERT_EQ(m.min(), *ms.begin());
  }
}

}  // namespace
}  // namespace qos
