// Chaos-harness integration tests: the graceful-degradation acceptance
// story end to end.
//
//   * Under a 30% capacity brownout, static RTT admission keeps admitting
//     maxQ1 = C·δ pending primaries that the slowed server cannot drain in
//     δ, so its Q1 miss fraction grows with brownout length.  DegradedRtt
//     re-tightens maxQ1 = Ĉ·δ from the monitored rate and demotes the
//     overload to Q2, keeping the Q1 miss fraction pinned near its
//     fault-free value regardless of brownout length.
//   * With an empty FaultySchedule the whole fault layer is a strict no-op:
//     run_chaos reproduces shape_and_run's completions bit for bit.
#include <gtest/gtest.h>

#include "core/shaper.h"
#include "fault/chaos.h"
#include "fault/sla_breach.h"
#include "trace/generator.h"

namespace qos {
namespace {

constexpr Time kDelta = from_ms(10);
constexpr double kCmin = 1'000;  // admission capacity (IOPS)
constexpr double kRate = 800;    // offered load (IOPS)
constexpr std::uint64_t kSeed = 99;
constexpr Time kHorizon = 30 * kUsPerSec;
constexpr Time kFaultStart = 5 * kUsPerSec;

Trace chaos_trace() { return generate_poisson(kRate, kHorizon, kSeed); }

ChaosOutcome run_rtt(const Trace& trace, Time brownout_length,
                     bool degraded) {
  ChaosConfig config;
  config.shaping.delta = kDelta;
  config.shaping.capacity_override_iops = kCmin;
  config.use_degraded_admission = true;
  config.degraded.enabled = degraded;
  if (brownout_length > 0) {
    config.faults.brownout(kFaultStart, kFaultStart + brownout_length, 0.30);
  }
  return run_chaos(trace, config);
}

TEST(ChaosIntegration, DegradedRttKeepsQ1MissFractionUnderBrownout) {
  const Trace trace = chaos_trace();

  const double fault_free = run_rtt(trace, 0, true).q1_miss_fraction;
  const double static_short =
      run_rtt(trace, 4 * kUsPerSec, false).q1_miss_fraction;
  const double static_long =
      run_rtt(trace, 16 * kUsPerSec, false).q1_miss_fraction;
  const ChaosOutcome degraded_short = run_rtt(trace, 4 * kUsPerSec, true);
  const ChaosOutcome degraded_long = run_rtt(trace, 16 * kUsPerSec, true);

  // Static RTT degrades with brownout length: the longer the fault, the
  // larger the fraction of Q1 completions that miss.
  EXPECT_GT(static_short, fault_free + 0.01);
  EXPECT_GT(static_long, 2 * static_short);

  // Degraded admission pins the Q1 miss fraction near the fault-free value
  // (within 2x plus a small monitor-lag allowance), independent of length.
  const double bound = 2 * fault_free + 0.02;
  EXPECT_LE(degraded_short.q1_miss_fraction, bound);
  EXPECT_LE(degraded_long.q1_miss_fraction, bound);
  EXPECT_NEAR(degraded_long.q1_miss_fraction,
              degraded_short.q1_miss_fraction, 0.02);

  // The protection is paid for in demotions, which scale with the fault.
  EXPECT_GT(degraded_short.demotions, 0u);
  EXPECT_GT(degraded_long.demotions, degraded_short.demotions);

  // And the static curve is far worse than the degraded one.
  EXPECT_GT(static_long, 5 * degraded_long.q1_miss_fraction);
}

TEST(ChaosIntegration, CurvesEmittedViaShapingReport) {
  const Trace trace = chaos_trace();
  MetricRegistry registry;
  ChaosConfig config;
  config.shaping.delta = kDelta;
  config.shaping.capacity_override_iops = kCmin;
  config.shaping.registry = &registry;
  config.use_degraded_admission = true;
  config.faults.brownout(kFaultStart, kFaultStart + 8 * kUsPerSec, 0.30);
  const ChaosOutcome out = run_chaos(trace, config);

  // The report carries both classes; the headline numbers derive from it.
  EXPECT_GT(out.shaping.report.primary.count, 0u);
  EXPECT_GT(out.shaping.report.overflow.count, 0u);
  EXPECT_DOUBLE_EQ(
      out.q1_miss_fraction,
      1.0 - out.shaping.report.primary.fraction_within_delta);
  EXPECT_EQ(registry.counter("degraded.demotions").value(), out.demotions);
  EXPECT_GT(registry.counter("rtt.admitted").value(), 0u);
  // Recovery happens within a bounded tail after the fault clears.
  EXPECT_LT(out.time_to_recover, 2 * kUsPerSec);
}

TEST(ChaosIntegration, FaultEventsReachTheSink) {
  const Trace trace = chaos_trace();
  RecordingSink sink;
  ChaosConfig config;
  config.shaping.delta = kDelta;
  config.shaping.capacity_override_iops = kCmin;
  config.shaping.sink = &sink;
  config.use_degraded_admission = true;
  config.faults.brownout(kFaultStart, kFaultStart + 4 * kUsPerSec, 0.30);
  run_chaos(trace, config);
  EXPECT_EQ(sink.count(EventKind::kFaultBegin), 1u);
  EXPECT_EQ(sink.count(EventKind::kFaultEnd), 1u);
  EXPECT_GT(sink.count(EventKind::kSlowService), 0u);
  EXPECT_GT(sink.count(EventKind::kDemote), 0u);
}

TEST(ChaosIntegration, BreachDetectorSeesBrownoutOnLiveStream) {
  // Wire the breach detector as the simulator sink: completions stream in
  // live, the 95%-within-delta tier breaches during the brownout and
  // recovers after it.
  const Trace trace = chaos_trace();
  GraduatedSla sla;
  sla.tiers.push_back({0.95, kDelta});
  SlaBreachDetector detector(sla);
  MetricRegistry registry;
  detector.attach_observability(nullptr, &registry);

  ChaosConfig config;
  config.shaping.delta = kDelta;
  config.shaping.capacity_override_iops = kCmin;
  config.shaping.sink = &detector;
  config.use_degraded_admission = true;
  config.degraded.enabled = false;  // static RTT: misses pile up
  config.faults.brownout(kFaultStart, kFaultStart + 10 * kUsPerSec, 0.30);
  run_chaos(trace, config);

  EXPECT_GE(registry.counter("sla.breaches").value(), 1u);
  EXPECT_GE(registry.counter("sla.recoveries").value(), 1u);
  EXPECT_FALSE(detector.in_breach(0));  // recovered by end of trace
  EXPECT_GT(detector.time_in_breach(0, kHorizon), kUsPerSec);
}

TEST(ChaosIntegration, EmptyScheduleBitIdenticalAcrossPolicies) {
  const Trace trace = chaos_trace();
  for (Policy policy : {Policy::kFcfs, Policy::kSplit, Policy::kFairQueue,
                        Policy::kMiser}) {
    ShapingConfig shaping;
    shaping.policy = policy;
    shaping.delta = kDelta;
    shaping.capacity_override_iops = kCmin;
    const ShapingOutcome plain = shape_and_run(trace, shaping);

    ChaosConfig config;
    config.shaping = shaping;  // empty FaultySchedule
    const ChaosOutcome chaos = run_chaos(trace, config);

    ASSERT_EQ(chaos.shaping.sim.completions.size(),
              plain.sim.completions.size())
        << policy_name(policy);
    for (std::size_t i = 0; i < plain.sim.completions.size(); ++i) {
      const CompletionRecord& a = plain.sim.completions[i];
      const CompletionRecord& b = chaos.shaping.sim.completions[i];
      ASSERT_EQ(a.seq, b.seq) << policy_name(policy) << " at " << i;
      ASSERT_EQ(a.start, b.start) << policy_name(policy) << " at " << i;
      ASSERT_EQ(a.finish, b.finish) << policy_name(policy) << " at " << i;
      ASSERT_EQ(a.klass, b.klass) << policy_name(policy) << " at " << i;
      ASSERT_EQ(a.server, b.server) << policy_name(policy) << " at " << i;
    }
    EXPECT_EQ(chaos.demotions, 0u);
    EXPECT_EQ(chaos.time_to_recover, 0);
  }
}

TEST(ChaosIntegration, StandardPoliciesRunUnderFaults) {
  // The decorator path: every recombination policy survives a mid-trace
  // brownout with all requests completing.
  const Trace trace = generate_poisson(kRate, 10 * kUsPerSec, kSeed);
  for (Policy policy : {Policy::kFcfs, Policy::kSplit, Policy::kFairQueue,
                        Policy::kMiser}) {
    ChaosConfig config;
    config.shaping.policy = policy;
    config.shaping.delta = kDelta;
    config.shaping.capacity_override_iops = kCmin;
    config.faults.brownout(2 * kUsPerSec, 6 * kUsPerSec, 0.30);
    const ChaosOutcome out = run_chaos(trace, config);
    EXPECT_EQ(out.shaping.sim.completions.size(), trace.size())
        << policy_name(policy);
    // A brownout strictly hurts: miss fraction at least the fault-free one.
    ChaosConfig clean = config;
    clean.faults = FaultySchedule{};
    const ChaosOutcome base = run_chaos(trace, clean);
    EXPECT_GE(out.q1_miss_fraction, base.q1_miss_fraction)
        << policy_name(policy);
  }
}

}  // namespace
}  // namespace qos
