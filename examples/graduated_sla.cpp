// Graduated SLA explorer: price out SLA tiers for one client workload.
//
//   $ ./graduated_sla
//
// The paper's business case: instead of one worst-case guarantee, offer a
// menu — "f% of your requests within delta, remainder best effort" — and
// price each option by the capacity it pins down.  This example profiles a
// bursty OLTP-like client and prints the menu, the capacity per option, and
// the saving against a worst-case reservation; it then validates one chosen
// tier by simulation with the Miser scheduler.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/shaper.h"
#include "core/sla.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace qos;

int main() {
  const Trace trace = preset_trace(Workload::kFinTrans, 900 * kUsPerSec);
  std::printf("client workload: %zu requests, mean %.0f IOPS, peak(100ms) "
              "%.0f IOPS\n\n",
              trace.size(), trace.mean_rate_iops(),
              trace.peak_rate_iops(100'000));

  // The SLA menu: tighter fraction/deadline combinations cost more capacity.
  struct MenuItem {
    const char* label;
    double fraction;
    Time delta;
  };
  const MenuItem menu[] = {
      {"bronze: 90% within 50 ms", 0.90, from_ms(50)},
      {"silver: 95% within 20 ms", 0.95, from_ms(20)},
      {"gold:   99% within 10 ms", 0.99, from_ms(10)},
      {"platinum: 100% within 10 ms (worst-case)", 1.0, from_ms(10)},
  };

  const double platinum_capacity =
      min_capacity(trace, 1.0, from_ms(10)).cmin_iops;
  AsciiTable table;
  table.add("SLA option", "capacity (IOPS)", "relative cost");
  for (const auto& item : menu) {
    GraduatedSla sla{{SlaTier{item.fraction, item.delta}}};
    ProvisioningPlan plan = plan_capacity(trace, sla);
    const double capacity = item.fraction == 1.0
                                ? plan.worst_case_iops
                                : plan.total_iops();
    table.add(item.label, format_double(capacity, 0),
              format_double(capacity / platinum_capacity, 2) + "x");
  }
  std::printf("%s\n", table.to_string().c_str());

  // A two-tier graduated SLA: 90% within 10 ms AND 99% within 50 ms.
  GraduatedSla graduated{
      {SlaTier{0.90, from_ms(10)}, SlaTier{0.99, from_ms(50)}}};
  ProvisioningPlan plan = plan_capacity(trace, graduated);
  std::printf("graduated SLA {90%% @ 10 ms, 99%% @ 50 ms}: %.0f IOPS "
              "(%.0f%% of worst case)\n\n",
              plan.total_iops(), 100 * plan.saving_ratio());

  // Validate by simulation with Miser at the planned capacity.
  ShapingConfig config;
  config.fraction = 0.90;
  config.delta = from_ms(10);
  config.policy = Policy::kMiser;
  config.capacity_override_iops = plan.cmin_iops;
  ShapingOutcome out = shape_and_run(trace, config);
  ResponseStats stats(out.sim.completions);
  std::printf("simulated with Miser at %.0f IOPS:\n", out.total_iops());
  std::printf("  within 10 ms: %.2f%%  (tier 1 target 90%%)\n",
              100 * stats.fraction_within(from_ms(10)));
  std::printf("  within 50 ms: %.2f%%  (tier 2 target 99%%)\n",
              100 * stats.fraction_within(from_ms(50)));
  return 0;
}
