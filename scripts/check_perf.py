#!/usr/bin/env python3
"""Gate BENCH_micro.json against the committed perf baseline.

Compares a freshly measured BENCH_micro.json (bench/micro_algorithms) with
bench/BENCH_micro.baseline.json and fails on scheduler throughput
regressions.

The gated quantity is each backend's *speedup* — heap ops/sec divided by the
frozen scan reference's ops/sec, both measured in the same process moments
apart — because that ratio cancels the raw speed of the machine running the
job.  Absolute ops/sec against a baseline recorded on different hardware
would gate the runner, not the code.  Two checks per (backend, flows) cell:

  1. Regression: current speedup >= (1 - tolerance) * baseline speedup
     (default tolerance 0.25, i.e. fail on a >25% regression).
  2. Floor: at 256 flows the speedup must stay >= --min-speedup (default
     3.0), the overhaul's acceptance criterion, regardless of the baseline.

Cells whose baseline speedup is below 1.0 (the single-flow cells, where a
heap cannot beat a one-element scan and the ratio is run-to-run noise) are
printed as informational and not gated; every backend is still gated at 16
and 256 flows.  Absolute ops/sec are printed for the log but never gated.

usage: check_perf.py BASELINE CURRENT [--tolerance F] [--min-speedup S]
"""

import argparse
import json
import sys

FLOOR_KEY = "flows_256"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_micro.baseline.json")
    parser.add_argument("current", help="freshly measured BENCH_micro.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup regression")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="hard speedup floor at 256 flows")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    print(f"{'backend':<8} {'flows':>9} {'base':>8} {'now':>8} "
          f"{'heap ops/s':>14}  status")
    for backend, base_cells in baseline["schedulers"].items():
        cur_cells = current["schedulers"].get(backend)
        if cur_cells is None:
            failures.append(f"{backend}: missing from current results")
            continue
        for cell, base in base_cells.items():
            cur = cur_cells.get(cell)
            if cur is None:
                failures.append(f"{backend}/{cell}: missing from current")
                continue
            base_speedup = base["speedup"]
            cur_speedup = cur["speedup"]
            allowed = (1.0 - args.tolerance) * base_speedup
            gated = base_speedup >= 1.0
            problems = []
            if gated and cur_speedup < allowed:
                problems.append(
                    f"speedup {cur_speedup:.2f} < {allowed:.2f} "
                    f"(>{args.tolerance:.0%} regression from "
                    f"{base_speedup:.2f})")
            if cell == FLOOR_KEY and cur_speedup < args.min_speedup:
                problems.append(
                    f"speedup {cur_speedup:.2f} below the "
                    f"{args.min_speedup:.1f}x floor at 256 flows")
            status = ("FAIL" if problems else
                      "ok" if gated else "info")
            print(f"{backend:<8} {cell:>9} {base_speedup:>7.2f}x "
                  f"{cur_speedup:>7.2f}x {cur['heap_ops_per_sec']:>14.0f}  "
                  f"{status}")
            for p in problems:
                failures.append(f"{backend}/{cell}: {p}")

    base_sim = baseline.get("simulator", {})
    cur_sim = current.get("simulator", {})
    for key in base_sim:
        if key in cur_sim:
            print(f"simulator {key}: {cur_sim[key]:.0f} events/s "
                  f"(baseline machine: {base_sim[key]:.0f}; informational)")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
