#include "disk/disk_model.h"

#include <gtest/gtest.h>

#include "core/fcfs.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

TEST(SeekProfile, ZeroDistanceIsFree) {
  SeekProfile seek;
  EXPECT_EQ(seek.seek_time(0), 0);
}

TEST(SeekProfile, TrackToTrack) {
  SeekProfile seek;
  EXPECT_EQ(seek.seek_time(1), seek.track_to_track);
}

TEST(SeekProfile, MonotoneInDistance) {
  SeekProfile seek;
  Time prev = 0;
  for (std::int64_t d : {0, 1, 10, 100, 1'000, 2'000, 5'000, 20'000, 49'000}) {
    const Time t = seek.seek_time(d);
    EXPECT_GE(t, prev) << "distance " << d;
    prev = t;
  }
}

TEST(SeekProfile, ShortSeeksFollowSqrtRegime) {
  SeekProfile seek;
  // sqrt regime: quadrupling the distance roughly doubles the extra time.
  const Time t4 = seek.seek_time(400) - seek.track_to_track;
  const Time t1 = seek.seek_time(100) - seek.track_to_track;
  EXPECT_NEAR(static_cast<double>(t4) / static_cast<double>(t1), 2.0, 0.2);
}

TEST(DiskGeometry, BlockArithmetic) {
  DiskGeometry g;
  EXPECT_EQ(g.blocks_per_cylinder(), g.heads * g.sectors_per_track);
  EXPECT_EQ(g.total_blocks(), g.cylinders * g.blocks_per_cylinder());
  EXPECT_EQ(g.rotation_period(), 4'000);  // 15k RPM => 4 ms
}

TEST(DiskModel, PositionMapping) {
  DiskModel disk;
  const auto& g = disk.geometry();
  DiskPosition p = disk.position_of(0);
  EXPECT_EQ(p.cylinder, 0);
  EXPECT_EQ(p.head, 0);
  EXPECT_EQ(p.sector, 0);
  p = disk.position_of(
      static_cast<std::uint64_t>(g.blocks_per_cylinder()) * 3 + 1);
  EXPECT_EQ(p.cylinder, 3);
  EXPECT_EQ(p.sector, 1);
}

TEST(DiskModel, ServiceTimeWithinMechanicalBounds) {
  DiskModel disk;
  Rng rng(47);
  Time now = 0;
  for (int i = 0; i < 1000; ++i) {
    Request r;
    r.lba = static_cast<std::uint64_t>(
        rng.uniform_int(0, disk.geometry().total_blocks() - 1));
    r.size_blocks = 8;
    const Time t = disk.service_time(r, now);
    EXPECT_GT(t, 0);
    // Seek <= ~8 ms, rotation <= 4 ms, transfer tiny: bound ~13 ms.
    EXPECT_LT(t, 14'000);
    now += t;
  }
}

TEST(DiskModel, SequentialFasterThanRandom) {
  DiskModel seq_disk, rand_disk;
  Rng rng(53);
  Time seq_total = 0, rand_total = 0;
  std::uint64_t lba = 0;
  Time now = 0;
  for (int i = 0; i < 500; ++i) {
    Request r;
    r.size_blocks = 8;
    r.lba = lba;
    lba += 8;
    seq_total += seq_disk.service_time(r, now);
    r.lba = static_cast<std::uint64_t>(rng.uniform_int(
        0, rand_disk.geometry().total_blocks() - 1));
    rand_total += rand_disk.service_time(r, now);
    now += 10'000;
  }
  EXPECT_LT(seq_total, rand_total / 2);
}

TEST(DiskModel, RotationDependsOnArrivalPhase) {
  // Same target sector, different start instants => different rotational
  // delay (the platter position is a function of wall-clock time).
  DiskModel a, b;
  Request r;
  r.lba = 100;
  const Time ta = a.service_time(r, 0);
  const Time tb = b.service_time(r, 1'000);
  EXPECT_NE(ta, tb);
}

TEST(DiskServer, DrivesSimulator) {
  AddressSpec addr;
  addr.lba_max = 1ULL << 20;
  Trace t = generate_poisson(50, 5 * kUsPerSec, 59, addr);
  FcfsScheduler fcfs;
  DiskServer disk;
  SimResult r = simulate(t, fcfs, disk);
  EXPECT_EQ(r.completions.size(), t.size());
  for (const auto& c : r.completions) EXPECT_GT(c.finish, c.start);
}

}  // namespace
}  // namespace qos
